//! Functional + cycle-level simulation of the multicore accelerator.
//!
//! [`Accelerator::execute`] runs one GEMM exactly the way the
//! hardware does: host-side stage-1/2 padding, row partitioning of
//! `A` across cores, fabric-side stage-3 padding, then a tiled
//! systolic schedule per core in which every reduction step goes
//! through the same [`mpt_arith::mac_step`] as CPU emulation —
//! making the functional result **bitwise identical** to
//! [`mpt_arith::qgemm()`] (the paper's bit-level accuracy claim).
//! Fully-identity pipelines are the one exception: CPU paths dispatch
//! them to the plain FP32 GEMM, so the PEs step with the same
//! separate product/sum roundings instead of the fused MAC.
//!
//! Cycle counting follows the schedule and adds the measured-world
//! non-idealities the paper reports: PCIe throughput capped at ~80%
//! of peak and per-launch/pipeline-fill overheads — so measured
//! latency lands slightly above the analytic estimate while
//! preserving which configuration is optimal (Fig. 7).

use crate::config::{SaConfig, PCIE_EFFICIENCY, PCIE_GBPS};
use crate::padding::PaddedGemm;
use mpt_arith::{mac_step, quantize_matrix, GemmShape, QGemmConfig};
use mpt_tensor::{ShapeError, Tensor};

/// Per-GEMM kernel launch overhead (OpenCL enqueue + sync), seconds.
pub const LAUNCH_OVERHEAD_S: f64 = 30.0e-6;

/// Latency observed by the cycle-level simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredLatency {
    /// Compute cycles of the slowest core (including pipeline fill).
    pub core_cycles: u64,
    /// Core time at the configured frequency, seconds.
    pub core_s: f64,
    /// PCIe transfer time at the achieved (80%) bandwidth, seconds.
    pub data_s: f64,
    /// End-to-end time including launch overhead.
    pub total_s: f64,
}

/// A simulated instance of the multicore GEMM accelerator.
///
/// # Example
///
/// ```
/// use mpt_fpga::{Accelerator, SaConfig};
/// use mpt_arith::QGemmConfig;
/// use mpt_tensor::Tensor;
///
/// let acc = Accelerator::new(SaConfig::new(4, 4, 2)?, 328.4);
/// let a = Tensor::ones(vec![3, 5]);
/// let b = Tensor::ones(vec![5, 2]);
/// let (c, lat) = acc.execute(&a, &b, &QGemmConfig::fp8_fp12_sr())?;
/// assert_eq!(c.shape(), &[3, 2]);
/// assert!(lat.total_s > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: SaConfig,
    freq_mhz: f64,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration running at
    /// `freq_mhz` (take the frequency from
    /// [`crate::SynthesisDb::frequency`]).
    pub fn new(config: SaConfig, freq_mhz: f64) -> Self {
        Accelerator { config, freq_mhz }
    }

    /// The array configuration.
    pub fn config(&self) -> SaConfig {
        self.config
    }

    /// The operating frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Executes `A · B` on the simulated hardware with `A` partitioned
    /// row-wise across the cores (the canonical mapping; apply
    /// transposition at the caller for other mappings).
    ///
    /// Functionally bit-identical to `mpt_arith::qgemm(a, b, cfg)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the operands are not conforming
    /// matrices.
    pub fn execute(
        &self,
        a: &Tensor,
        b: &Tensor,
        cfg: &QGemmConfig,
    ) -> Result<(Tensor, MeasuredLatency), ShapeError> {
        let (_, k) = a.as_matrix()?;
        let (k2, _) = b.as_matrix()?;
        if k != k2 {
            return Err(ShapeError::Mismatch {
                left: a.shape().to_vec(),
                right: b.shape().to_vec(),
                op: "Accelerator::execute",
            });
        }
        // Host: quantize (as the host does before packing HBM words),
        // then run the quantized operands through the fabric schedule.
        let aq = quantize_matrix(a, &cfg.quant_a, 0, 0);
        let bq = quantize_matrix(b, &cfg.quant_b, 0, 0);
        self.execute_quantized(&aq, &bq, cfg)
    }

    /// Executes `A · B` where both operands have **already** been
    /// quantized with `cfg`'s quantizers at global coordinates
    /// (offsets `(0, 0)`), skipping the host-side quantization stage.
    ///
    /// This is the compute stage of the pipelined executor
    /// ([`crate::pipeline::PipelinedExecutor`]): the operand cache
    /// holds quantized carriers, so a cache hit must not re-quantize.
    /// `execute(a, b, cfg)` is exactly
    /// `execute_quantized(quantize(a), quantize(b), cfg)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the operands are not conforming
    /// matrices.
    pub fn execute_quantized(
        &self,
        aq: &Tensor,
        bq: &Tensor,
        cfg: &QGemmConfig,
    ) -> Result<(Tensor, MeasuredLatency), ShapeError> {
        let (n, k) = aq.as_matrix()?;
        let (k2, m) = bq.as_matrix()?;
        if k != k2 {
            return Err(ShapeError::Mismatch {
                left: aq.shape().to_vec(),
                right: bq.shape().to_vec(),
                op: "Accelerator::execute_quantized",
            });
        }
        let shape = GemmShape::new(n, k, m);
        let bits = cfg.quant_a.format().bit_width();
        let padded = PaddedGemm::new(shape, self.config, bits);

        // Stage-1/2 padding of the quantized operands.
        let a_host = aq.pad_to(padded.n_core * self.config.c(), padded.k_mem)?;
        let b_host = bq.pad_to(padded.k_mem, padded.m_mem)?;

        // Quantization already happened; cores must not re-quantize.
        let core_cfg = QGemmConfig {
            quant_a: mpt_formats::Quantizer::identity(),
            quant_b: mpt_formats::Quantizer::identity(),
            mac: cfg.mac,
        };
        // A fully-identity pipeline is dispatched to the plain FP32
        // GEMM (`Tensor::matmul`, separate product/sum roundings) on
        // every CPU path; the PEs must use the same stepping, not the
        // fused-MAC `mac_step`, to stay bit-identical.
        let identity = cfg.is_identity();

        let mut out_rows: Vec<Tensor> = Vec::with_capacity(self.config.c());
        let mut worst_cycles = 0u64;
        for core in 0..self.config.c() {
            let row0 = core * padded.n_core;
            let slice = a_host.slice_rows(row0, row0 + padded.n_core)?;
            // Fabric: stage-3 padding during load.
            let a_core = slice.pad_to(padded.n_comp, padded.k_mem)?;
            let b_core = b_host.pad_to(padded.k_mem, padded.m_comp)?;
            let (tile, cycles) = self.run_core(&a_core, &b_core, &core_cfg, row0, identity);
            worst_cycles = worst_cycles.max(cycles);
            out_rows.push(tile.crop_to(padded.n_core, m)?);
        }
        let stacked = Tensor::concat_rows(&out_rows)?;
        let result = stacked.crop_to(n, m)?;

        let f = self.freq_mhz * 1.0e6;
        let core_s = worst_cycles as f64 / f;
        // Results stream back packed at the operand width (the host
        // casts to FP32 after the transfer), matching the model's
        // uniform S_data accounting.
        let in_bytes = (self.config.c() * padded.n_core * padded.k_mem
            + padded.k_mem * padded.m_mem) as f64
            * bits as f64
            / 8.0;
        let out_bytes = (self.config.c() * padded.n_core * padded.m_mem) as f64 * bits as f64 / 8.0;
        let data_s = (in_bytes + out_bytes) / (PCIE_GBPS * 1.0e9 * PCIE_EFFICIENCY);
        let total_s = core_s + data_s + LAUNCH_OVERHEAD_S;
        Ok((
            result,
            MeasuredLatency {
                core_cycles: worst_cycles,
                core_s,
                data_s,
                total_s,
            },
        ))
    }

    /// Cycle-level latency of one GEMM **without** executing the
    /// arithmetic: the closed form of the exact cycle counting
    /// performed by [`execute`](Accelerator::execute)'s schedule,
    /// usable at paper-scale problem sizes where functional
    /// simulation would be prohibitive.
    ///
    /// Guaranteed to match `execute`'s `core_cycles` (asserted by
    /// tests).
    pub fn timing_only(&self, shape: GemmShape, in_bits: u32) -> MeasuredLatency {
        let padded = PaddedGemm::new(shape, self.config, in_bits);
        let t_pe = self.config.t_pe();
        let t_mac = self.config.t_mac();
        let tiles = (padded.n_comp / t_pe) as u64 * (padded.m_comp / t_mac) as u64;
        let per_tile = (self.config.n() + self.config.m()) as u64
            + padded.k_mem as u64 * t_pe as u64
            + (t_pe * t_mac / self.config.m()) as u64;
        let core_cycles = tiles * per_tile;
        let f = self.freq_mhz * 1.0e6;
        let core_s = core_cycles as f64 / f;
        let in_bytes = (self.config.c() * padded.n_core * padded.k_mem
            + padded.k_mem * padded.m_mem) as f64
            * in_bits as f64
            / 8.0;
        let out_bytes =
            (self.config.c() * padded.n_core * padded.m_mem) as f64 * in_bits as f64 / 8.0;
        let data_s = (in_bytes + out_bytes) / (PCIE_GBPS * 1.0e9 * PCIE_EFFICIENCY);
        MeasuredLatency {
            core_cycles,
            core_s,
            data_s,
            total_s: core_s + data_s + LAUNCH_OVERHEAD_S,
        }
    }

    /// Measured-world stage decomposition of one launch:
    /// `(transfer-in, compute, transfer-out)` seconds, where compute
    /// includes the per-launch overhead and the transfers run at the
    /// achieved (80%) PCIe bandwidth. The three components sum to
    /// [`timing_only`](Accelerator::timing_only)'s `total_s`; the
    /// pipelined executor overlaps them across consecutive launches
    /// (stage *s* of launch *i+1* behind stage *s+1* of launch *i*).
    pub fn stage_timing(&self, shape: GemmShape, in_bits: u32) -> (f64, f64, f64) {
        let padded = PaddedGemm::new(shape, self.config, in_bits);
        let lat = self.timing_only(shape, in_bits);
        let in_bytes = (self.config.c() * padded.n_core * padded.k_mem
            + padded.k_mem * padded.m_mem) as f64
            * in_bits as f64
            / 8.0;
        let out_bytes =
            (self.config.c() * padded.n_core * padded.m_mem) as f64 * in_bits as f64 / 8.0;
        let bw = PCIE_GBPS * 1.0e9 * PCIE_EFFICIENCY;
        (
            in_bytes / bw,
            lat.core_s + LAUNCH_OVERHEAD_S,
            out_bytes / bw,
        )
    }

    /// Runs one core's tiled systolic schedule over its padded
    /// operands, counting cycles. `row_offset` keeps stochastic
    /// rounding indexed by global output coordinates.
    fn run_core(
        &self,
        a: &Tensor,
        b: &Tensor,
        cfg: &QGemmConfig,
        row_offset: usize,
        identity: bool,
    ) -> (Tensor, u64) {
        let (n_comp, k_mem) = a.as_matrix().expect("matrix");
        let (_, m_comp) = b.as_matrix().expect("matrix");
        let t_pe = self.config.t_pe();
        let t_mac = self.config.t_mac();
        let mut out = Tensor::zeros(vec![n_comp, m_comp]);

        let mut cycles: u64 = 0;
        // Tile loop: row tiles of T_PE rows × column tiles of
        // T_MAC columns, reduction streamed over k (the 1-D systolic
        // dataflow of de Fine Licht et al.).
        for rt in (0..n_comp).step_by(t_pe) {
            for ct in (0..m_comp).step_by(t_mac) {
                // Pipeline fill/drain: the N-deep PE chain plus the
                // M-wide writeback per tile.
                cycles += (self.config.n() + self.config.m()) as u64;
                for kk in 0..k_mem {
                    // One k-step feeds all T_PE×T_MAC MACs of the tile
                    // over T_PE*T_MAC/(N*M) = T_PE beats.
                    cycles += t_pe as u64;
                    for i in rt..rt + t_pe {
                        let av = a.data()[i * k_mem + kk];
                        for j in ct..ct + t_mac {
                            let acc = out.data()[i * m_comp + j];
                            let bv = b.data()[kk * m_comp + j];
                            let v = if identity {
                                // Plain FP32 PE: round the product and
                                // the sum separately, with the same
                                // zero-row skip as `Tensor::matmul`.
                                if av == 0.0 {
                                    acc
                                } else {
                                    acc + av * bv
                                }
                            } else {
                                mac_step(acc, av, bv, &cfg.mac, i + row_offset, j, kk)
                            };
                            out.data_mut()[i * m_comp + j] = v;
                        }
                    }
                }
                // Result write-back: T_PE*T_MAC elements at T_out = M
                // per cycle.
                cycles += (t_pe * t_mac / self.config.m()) as u64;
            }
        }
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_arith::qgemm;

    fn operands(n: usize, k: usize, m: usize) -> (Tensor, Tensor) {
        (
            Tensor::from_fn(vec![n, k], |i| ((i * 37 % 41) as f32 - 20.0) * 0.05),
            Tensor::from_fn(vec![k, m], |i| ((i * 43 % 47) as f32 - 23.0) * 0.04),
        )
    }

    #[test]
    fn bitwise_equal_to_emulation_fp32() {
        let (a, b) = operands(10, 20, 6);
        let acc = Accelerator::new(SaConfig::new(4, 2, 3).unwrap(), 311.0);
        let cfg = QGemmConfig::fp32();
        let (c, _) = acc.execute(&a, &b, &cfg).unwrap();
        assert_eq!(c, qgemm(&a, &b, &cfg).unwrap());
    }

    #[test]
    fn bitwise_equal_to_emulation_stochastic() {
        // The headline property: FPGA simulation == emulation at the
        // bit level, *including* stochastic rounding, because both
        // draw randomness by logical coordinates.
        let (a, b) = operands(13, 29, 7);
        for (n, m, c) in [(2, 2, 2), (4, 4, 1), (8, 8, 3)] {
            let acc = Accelerator::new(SaConfig::new(n, m, c).unwrap(), 200.0);
            let cfg = QGemmConfig::fp8_fp12_sr().with_seed(77);
            let (got, _) = acc.execute(&a, &b, &cfg).unwrap();
            let want = qgemm(&a, &b, &cfg).unwrap();
            assert_eq!(got, want, "config <{n},{m},{c}>");
        }
    }

    #[test]
    fn equal_across_core_counts() {
        let (a, b) = operands(33, 17, 9);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(5);
        let one = Accelerator::new(SaConfig::new(8, 4, 1).unwrap(), 197.7);
        let many = Accelerator::new(SaConfig::new(8, 4, 10).unwrap(), 197.7);
        let (r1, _) = one.execute(&a, &b, &cfg).unwrap();
        let (r10, _) = many.execute(&a, &b, &cfg).unwrap();
        assert_eq!(r1, r10, "core count changed results");
    }

    #[test]
    fn cycle_count_scales_with_work() {
        let acc = Accelerator::new(SaConfig::new(8, 8, 1).unwrap(), 196.2);
        let cfg = QGemmConfig::fp8_fp12_sr();
        let (a1, b1) = operands(64, 64, 64);
        let (a2, b2) = operands(64, 128, 64);
        let (_, l1) = acc.execute(&a1, &b1, &cfg).unwrap();
        let (_, l2) = acc.execute(&a2, &b2, &cfg).unwrap();
        assert!(l2.core_cycles > l1.core_cycles);
        assert!(l2.core_cycles < 3 * l1.core_cycles);
    }

    #[test]
    fn measured_exceeds_estimate() {
        // The cycle model plus PCIe cap must land above the analytic
        // estimate (Fig. 7's consistent gap).
        use crate::perf::estimate_gemm;
        let (a, b) = operands(128, 96, 80);
        let cfg = QGemmConfig::fp8_fp12_sr();
        let sa = SaConfig::new(8, 8, 4).unwrap();
        let acc = Accelerator::new(sa, 298.0);
        let (_, measured) = acc.execute(&a, &b, &cfg).unwrap();
        let est = estimate_gemm(GemmShape::new(128, 96, 80), sa, 298.0, 8, 32);
        assert!(
            measured.total_s > est.total_s,
            "measured {} <= estimated {}",
            measured.total_s,
            est.total_s
        );
        // ... but within 2x: the model is supposed to be accurate.
        assert!(measured.total_s < est.total_s * 2.0);
    }

    #[test]
    fn more_cores_reduce_measured_core_time() {
        let (a, b) = operands(512, 128, 128);
        let cfg = QGemmConfig::fp8_fp12_sr();
        let l1 = Accelerator::new(SaConfig::new(8, 8, 1).unwrap(), 200.0)
            .execute(&a, &b, &cfg)
            .unwrap()
            .1;
        let l8 = Accelerator::new(SaConfig::new(8, 8, 8).unwrap(), 200.0)
            .execute(&a, &b, &cfg)
            .unwrap()
            .1;
        assert!(l8.core_s < l1.core_s / 4.0);
    }

    #[test]
    fn timing_only_matches_functional_cycle_count() {
        let cfg = QGemmConfig::fp8_fp12_sr();
        for (n, m, c) in [(2, 2, 2), (8, 4, 3), (8, 8, 1)] {
            let acc = Accelerator::new(SaConfig::new(n, m, c).unwrap(), 250.0);
            for shape in [(13, 29, 7), (64, 64, 64), (1, 1, 1), (100, 37, 65)] {
                let (a, b) = operands(shape.0, shape.1, shape.2);
                let (_, measured) = acc.execute(&a, &b, &cfg).unwrap();
                let quick = acc.timing_only(GemmShape::new(shape.0, shape.1, shape.2), 8);
                assert_eq!(
                    measured.core_cycles, quick.core_cycles,
                    "<{n},{m},{c}> shape {shape:?}"
                );
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let acc = Accelerator::new(SaConfig::new(2, 2, 1).unwrap(), 320.1);
        let a = Tensor::zeros(vec![3, 4]);
        let b = Tensor::zeros(vec![5, 2]);
        assert!(acc.execute(&a, &b, &QGemmConfig::fp32()).is_err());
    }
}
