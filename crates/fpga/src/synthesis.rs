//! The static configuration database.
//!
//! The paper pre-generates FPGA configurations offline with Vitis HLS
//! 2023.1 for the Alveo U55 and selects among them at run time
//! (Section IV-B / V-C). This module embeds those synthesis results —
//! Table III (each `(N, M)` at its maximal core count and achieved
//! frequency, with resource utilization) and Table IV's frequency
//! sweep for the 8×8 array at `C = 1..10` — plus an interpolating
//! frequency model for off-table core counts, calibrated on the 8×8
//! sweep.

use crate::config::{ConfigError, SaConfig, MAX_CORES};

/// One synthesized design point (a Table III row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthPoint {
    /// PEs per core.
    pub n: usize,
    /// MACs per PE.
    pub m: usize,
    /// Maximal core count that fits the chip.
    pub c_max: usize,
    /// Achieved frequency at `c_max`, MHz.
    pub freq_mhz: f64,
    /// Look-up-table utilization at `c_max`, percent.
    pub lut_pct: f64,
    /// Block-RAM utilization at `c_max`, percent.
    pub bram_pct: f64,
    /// DSP utilization at `c_max`, percent (address generation only —
    /// the arithmetic itself is implemented in LUTs).
    pub dsp_pct: f64,
}

/// Table III of the paper: possible accelerator configurations on the
/// U55 for the FP8×FP12-SR MAC.
const TABLE_III: [SynthPoint; 12] = [
    SynthPoint {
        n: 1,
        m: 1,
        c_max: 10,
        freq_mhz: 320.9,
        lut_pct: 14.12,
        bram_pct: 13.78,
        dsp_pct: 8.56,
    },
    SynthPoint {
        n: 2,
        m: 1,
        c_max: 10,
        freq_mhz: 320.1,
        lut_pct: 14.80,
        bram_pct: 13.80,
        dsp_pct: 7.98,
    },
    SynthPoint {
        n: 2,
        m: 2,
        c_max: 10,
        freq_mhz: 320.1,
        lut_pct: 15.10,
        bram_pct: 14.44,
        dsp_pct: 8.05,
    },
    SynthPoint {
        n: 4,
        m: 2,
        c_max: 10,
        freq_mhz: 311.0,
        lut_pct: 18.06,
        bram_pct: 15.99,
        dsp_pct: 9.76,
    },
    SynthPoint {
        n: 4,
        m: 4,
        c_max: 10,
        freq_mhz: 328.4,
        lut_pct: 21.30,
        bram_pct: 18.20,
        dsp_pct: 9.80,
    },
    SynthPoint {
        n: 8,
        m: 4,
        c_max: 10,
        freq_mhz: 197.7,
        lut_pct: 28.20,
        bram_pct: 17.09,
        dsp_pct: 11.53,
    },
    SynthPoint {
        n: 8,
        m: 8,
        c_max: 10,
        freq_mhz: 196.2,
        lut_pct: 37.51,
        bram_pct: 21.50,
        dsp_pct: 11.53,
    },
    SynthPoint {
        n: 16,
        m: 8,
        c_max: 10,
        freq_mhz: 180.0,
        lut_pct: 61.60,
        bram_pct: 30.3,
        dsp_pct: 11.6,
    },
    SynthPoint {
        n: 16,
        m: 16,
        c_max: 7,
        freq_mhz: 160.0,
        lut_pct: 62.73,
        bram_pct: 33.57,
        dsp_pct: 7.45,
    },
    SynthPoint {
        n: 32,
        m: 16,
        c_max: 4,
        freq_mhz: 198.4,
        lut_pct: 73.26,
        bram_pct: 33.26,
        dsp_pct: 5.72,
    },
    SynthPoint {
        n: 32,
        m: 32,
        c_max: 2,
        freq_mhz: 197.3,
        lut_pct: 62.19,
        bram_pct: 71.48,
        dsp_pct: 2.77,
    },
    SynthPoint {
        n: 64,
        m: 32,
        c_max: 1,
        freq_mhz: 150.0,
        lut_pct: 52.57,
        bram_pct: 71.64,
        dsp_pct: 1.93,
    },
];

/// Table IV of the paper: achieved frequency (MHz) of the 8×8 array
/// synthesized with `C = 1..=10` cores.
const FREQ_8X8_BY_C: [f64; 10] = [
    378.3, 330.9, 298.0, 298.0, 299.8, 270.6, 274.7, 203.1, 203.1, 196.2,
];

/// The pre-generated configuration database for one target device.
///
/// # Example
///
/// ```
/// use mpt_fpga::SynthesisDb;
///
/// let db = SynthesisDb::u55();
/// assert_eq!(db.max_cores(8, 8), Some(10));
/// assert_eq!(db.frequency(8, 8, 1), Some(378.3));
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisDb {
    points: Vec<SynthPoint>,
}

impl SynthesisDb {
    /// The Alveo U55 database embedded from the paper's Tables III/IV.
    pub fn u55() -> Self {
        SynthesisDb {
            points: TABLE_III.to_vec(),
        }
    }

    /// All synthesized `(N, M)` design points.
    pub fn points(&self) -> &[SynthPoint] {
        &self.points
    }

    /// The Table III row for `(n, m)`, if synthesized.
    pub fn point(&self, n: usize, m: usize) -> Option<&SynthPoint> {
        self.points.iter().find(|p| p.n == n && p.m == m)
    }

    /// Maximal feasible core count for an `(n, m)` array.
    pub fn max_cores(&self, n: usize, m: usize) -> Option<usize> {
        self.point(n, m).map(|p| p.c_max)
    }

    /// Achieved frequency (MHz) of `(n, m)` at `c` cores.
    ///
    /// The 8×8 sweep returns Table IV's measured values exactly; other
    /// arrays interpolate the 8×8 relative frequency-vs-core-count
    /// curve scaled to their Table III max-count frequency. Returns
    /// `None` for configurations that do not fit the chip.
    pub fn frequency(&self, n: usize, m: usize, c: usize) -> Option<f64> {
        let p = self.point(n, m)?;
        if c == 0 || c > p.c_max {
            return None;
        }
        if n == 8 && m == 8 {
            return Some(FREQ_8X8_BY_C[c - 1]);
        }
        if p.c_max == 1 {
            return Some(p.freq_mhz);
        }
        // Scale the Table III frequency (achieved at c_max) by the
        // 8x8 sweep's relative frequency at the same *absolute* core
        // count: fewer cores ease routing by roughly the same factor
        // regardless of array size.
        let rel = FREQ_8X8_BY_C[c - 1] / FREQ_8X8_BY_C[p.c_max - 1];
        Some(p.freq_mhz * rel)
    }

    /// Estimated resource utilization of `(n, m)` at `c` cores
    /// `(lut%, bram%, dsp%)`: the platform shell is a fixed floor and
    /// the per-core cost scales linearly (calibrated so the Table III
    /// row is met exactly at `c_max`).
    pub fn resources(&self, n: usize, m: usize, c: usize) -> Option<(f64, f64, f64)> {
        const SHELL_LUT: f64 = 10.0;
        const SHELL_BRAM: f64 = 12.0;
        const SHELL_DSP: f64 = 1.0;
        let p = self.point(n, m)?;
        if c == 0 || c > p.c_max {
            return None;
        }
        let scale = c as f64 / p.c_max as f64;
        let per = |total: f64, shell: f64| shell + (total - shell).max(0.0) * scale;
        Some((
            per(p.lut_pct, SHELL_LUT),
            per(p.bram_pct, SHELL_BRAM),
            per(p.dsp_pct, SHELL_DSP),
        ))
    }

    /// Every feasible `⟨N, M, C⟩` configuration, with `C` ranging from
    /// 1 to each array's maximal count — the search space of the
    /// matching algorithm.
    pub fn feasible_configs(&self) -> Vec<SaConfig> {
        let mut out = Vec::new();
        for p in &self.points {
            for c in 1..=p.c_max.min(MAX_CORES) {
                if let Ok(cfg) = SaConfig::new(p.n, p.m, c) {
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// Validates that a configuration exists in the database (the
    /// paper only deploys pre-generated static bitstreams).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CoreCount`] for a core count above the
    /// synthesized maximum, or [`ConfigError::PeCount`] for an
    /// unsynthesized array shape.
    pub fn validate(&self, cfg: SaConfig) -> Result<(), ConfigError> {
        match self.point(cfg.n(), cfg.m()) {
            None => Err(ConfigError::PeCount(cfg.n())),
            Some(p) if cfg.c() > p.c_max => Err(ConfigError::CoreCount(cfg.c())),
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_is_complete() {
        let db = SynthesisDb::u55();
        assert_eq!(db.points().len(), 12);
        // The largest array fits exactly once (paper: "The largest
        // systolic array we can accommodate has N=64, M=32 with C=1").
        assert_eq!(db.max_cores(64, 32), Some(1));
        assert_eq!(db.max_cores(1, 1), Some(10));
        assert_eq!(db.max_cores(3, 3), None);
    }

    #[test]
    fn freq_8x8_matches_table_iv() {
        let db = SynthesisDb::u55();
        assert_eq!(db.frequency(8, 8, 1), Some(378.3));
        assert_eq!(db.frequency(8, 8, 7), Some(274.7));
        assert_eq!(db.frequency(8, 8, 10), Some(196.2));
        assert_eq!(db.frequency(8, 8, 11), None);
    }

    #[test]
    fn freq_at_cmax_matches_table_iii() {
        let db = SynthesisDb::u55();
        for p in db.points() {
            let f = db.frequency(p.n, p.m, p.c_max).unwrap();
            assert!(
                (f - p.freq_mhz).abs() < 1e-9,
                "<{},{}> at c_max: {f} vs {}",
                p.n,
                p.m,
                p.freq_mhz
            );
        }
    }

    #[test]
    fn fewer_cores_never_slower() {
        // The interpolated curve is derived from Table IV where C=1 is
        // the fastest point of the sweep.
        let db = SynthesisDb::u55();
        let f1 = db.frequency(16, 16, 1).unwrap();
        let f7 = db.frequency(16, 16, 7).unwrap();
        assert!(f1 > f7, "{f1} vs {f7}");
    }

    #[test]
    fn resources_hit_table_at_cmax_and_shrink_below() {
        let db = SynthesisDb::u55();
        let (lut, bram, dsp) = db.resources(8, 8, 10).unwrap();
        assert!((lut - 37.51).abs() < 1e-9);
        assert!((bram - 21.50).abs() < 1e-9);
        assert!((dsp - 11.53).abs() < 1e-9);
        let (lut1, ..) = db.resources(8, 8, 1).unwrap();
        assert!(lut1 < lut && lut1 > 10.0);
        assert_eq!(db.resources(8, 8, 11), None);
    }

    #[test]
    fn feasible_space_size() {
        // Sum of c_max over rows: 10*8 + 7 + 4 + 2 + 1 = 94.
        let db = SynthesisDb::u55();
        assert_eq!(db.feasible_configs().len(), 94);
    }

    #[test]
    fn validate_rejects_unsynthesized() {
        let db = SynthesisDb::u55();
        assert!(db.validate(SaConfig::new(8, 8, 10).unwrap()).is_ok());
        assert!(db.validate(SaConfig::new(16, 16, 8).unwrap()).is_err());
        assert!(db.validate(SaConfig::new(128, 64, 1).unwrap()).is_err());
    }
}
