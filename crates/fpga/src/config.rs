//! Accelerator configuration and platform constants.

use std::error::Error;
use std::fmt;

/// Width of one HBM pseudo-channel port on the Alveo U55 (bits).
pub const HBM_PORT_BITS: usize = 512;

/// Maximum core count: the U55 exposes 32 HBM ports and each core
/// consumes 3 (two operands + result), capping `C` at 10
/// (paper Section V-C).
pub const MAX_CORES: usize = 10;

/// Host↔FPGA PCIe bandwidth in GB/s (PCIe 3.0 ×16). Estimates use the
/// full figure; measured runs achieve only ~80% of it (paper
/// Section V-C).
pub const PCIE_GBPS: f64 = 16.0;

/// Fraction of peak PCIe bandwidth actually achieved on hardware.
pub const PCIE_EFFICIENCY: f64 = 0.8;

/// Error returned for invalid accelerator configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `N` (PE count) must be a power of two.
    PeCount(usize),
    /// `M` (MACs per PE) must be a power of two dividing `N` (or
    /// equal to it, for the smallest arrays).
    MacCount {
        /// Requested PE count.
        n: usize,
        /// Requested MAC count.
        m: usize,
    },
    /// `C` must be in `1..=MAX_CORES`.
    CoreCount(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::PeCount(n) => write!(f, "PE count {n} is not a power of two"),
            ConfigError::MacCount { n, m } => write!(
                f,
                "MAC count {m} invalid for {n} PEs (must be a power of two with m == n or 2m == n)"
            ),
            ConfigError::CoreCount(c) => {
                write!(
                    f,
                    "core count {c} outside 1..={MAX_CORES} (32 HBM ports / 3 per core)"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// One accelerator configuration `⟨N, M, C⟩`: `C` systolic-array
/// cores of `N` PEs × `M` MAC units (paper Table III notation).
///
/// # Example
///
/// ```
/// use mpt_fpga::SaConfig;
///
/// let cfg = SaConfig::new(8, 8, 10)?;
/// assert_eq!(cfg.macs_per_core(), 64);
/// assert_eq!(cfg.total_macs(), 640);
/// # Ok::<(), mpt_fpga::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaConfig {
    n: usize,
    m: usize,
    c: usize,
}

impl SaConfig {
    /// Validates and creates a configuration.
    ///
    /// The constraint set follows the paper (Section V-C): `N` and `M`
    /// are powers of two with `M == N` or `2·M == N` (every Table III
    /// point), and `C ≤ 10` from the HBM port budget.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated constraint.
    pub fn new(n: usize, m: usize, c: usize) -> Result<Self, ConfigError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(ConfigError::PeCount(n));
        }
        if m == 0 || !m.is_power_of_two() || !(m == n || 2 * m == n) {
            return Err(ConfigError::MacCount { n, m });
        }
        if c == 0 || c > MAX_CORES {
            return Err(ConfigError::CoreCount(c));
        }
        Ok(SaConfig { n, m, c })
    }

    /// Number of PEs per core (`N`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of MAC units per PE (`M`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of cores (`C`).
    pub fn c(&self) -> usize {
        self.c
    }

    /// MAC units per core, `N·M` — the compute tile `T_MAC`.
    pub fn macs_per_core(&self) -> usize {
        self.n * self.m
    }

    /// Total MAC units on the device.
    pub fn total_macs(&self) -> usize {
        self.n * self.m * self.c
    }

    /// The row compute tile `T_PE = N`.
    pub fn t_pe(&self) -> usize {
        self.n
    }

    /// The column compute tile `T_MAC = N·M`.
    pub fn t_mac(&self) -> usize {
        self.n * self.m
    }

    /// The memory tile for `bits`-wide elements:
    /// `T_mem = 512 / bits` (paper stage-2 padding).
    pub fn t_mem(bits: u32) -> usize {
        HBM_PORT_BITS / bits.max(1) as usize
    }

    /// Same configuration with a different core count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CoreCount`] if out of range.
    pub fn with_cores(self, c: usize) -> Result<Self, ConfigError> {
        SaConfig::new(self.n, self.m, c)
    }
}

impl fmt::Display for SaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{},{}>", self.n, self.m, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_table_iii_point() {
        for (n, m) in [
            (1, 1),
            (2, 1),
            (2, 2),
            (4, 2),
            (4, 4),
            (8, 4),
            (8, 8),
            (16, 8),
            (16, 16),
            (32, 16),
            (32, 32),
            (64, 32),
        ] {
            assert!(SaConfig::new(n, m, 1).is_ok(), "<{n},{m},1> rejected");
        }
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(SaConfig::new(3, 1, 1).is_err());
        assert!(SaConfig::new(8, 2, 1).is_err()); // m too small
        assert!(SaConfig::new(4, 8, 1).is_err()); // m > n
        assert!(SaConfig::new(8, 8, 0).is_err());
        assert!(SaConfig::new(8, 8, 11).is_err());
        assert!(SaConfig::new(0, 1, 1).is_err());
    }

    #[test]
    fn tiles() {
        let cfg = SaConfig::new(8, 4, 2).unwrap();
        assert_eq!(cfg.t_pe(), 8);
        assert_eq!(cfg.t_mac(), 32);
        assert_eq!(cfg.total_macs(), 64);
        assert_eq!(SaConfig::t_mem(8), 64);
        assert_eq!(SaConfig::t_mem(12), 42);
        assert_eq!(SaConfig::t_mem(32), 16);
    }

    #[test]
    fn with_cores_revalidates() {
        let cfg = SaConfig::new(8, 8, 1).unwrap();
        assert!(cfg.with_cores(10).is_ok());
        assert!(cfg.with_cores(11).is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SaConfig::new(16, 8, 10).unwrap().to_string(), "<16,8,10>");
    }

    #[test]
    fn error_messages() {
        assert!(SaConfig::new(3, 1, 1)
            .unwrap_err()
            .to_string()
            .contains("power of two"));
        assert!(SaConfig::new(8, 8, 99)
            .unwrap_err()
            .to_string()
            .contains("HBM"));
    }
}
