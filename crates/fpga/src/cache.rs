//! Packed-operand cache: quantize + HBM-pack reused operands once.
//!
//! Training reuses the same weight matrices across thousands of
//! launches, yet the eager path re-quantizes and re-packs every
//! operand on every launch. [`OperandCache`] keys each operand by its
//! *content* (an FNV-1a fingerprint of the raw `f32` carrier bits),
//! its layout `(rows, cols)` and the quantizer that will consume it —
//! format, rounding mode and stochastic-rounding seed all change the
//! quantized image, so all three participate in the key.
//!
//! Content addressing makes invalidation automatic: an optimizer step
//! that updates a weight produces different carrier bits, which is a
//! different key, so the stale image simply stops being referenced
//! and ages out of the byte-budget LRU. Stale reads are *impossible*,
//! not just improbable: a fingerprint hit is confirmed by comparing
//! every carrier bit of the stored input against the candidate before
//! the cached image is used (a colliding fingerprint repacks instead
//! of returning wrong data — enforced by the cache-invalidation
//! proptests in the conformance crate).
//!
//! Telemetry counters (`fpga.cache.hit` / `.miss` / `.evict` /
//! `.bytes_packed`) mirror the [`CacheStats`] the cache itself keeps,
//! so JSONL traces and the bench harness see the same numbers.

use crate::hbm::HbmImage;
use mpt_arith::quantize_matrix;
use mpt_formats::{NumberFormat, Quantizer, Rounding};
use mpt_tensor::{ShapeError, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// Default byte budget: 64 MiB of resident packed operands — a few
/// LeNet-scale models' worth of weights and activations.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// Identity of one packable operand: content fingerprint, layout and
/// the quantizer stream that will consume it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OperandKey {
    /// FNV-1a over the raw `f32` carrier bits (content identity: any
    /// update to the tensor changes this, which *is* the
    /// invalidation rule).
    fingerprint: u64,
    rows: usize,
    cols: usize,
    /// FNV-1a over the quantizer descriptor (format, rounding, SR
    /// seed) — the same tensor quantized by two different streams
    /// must occupy two entries.
    quant: u64,
}

#[derive(Debug)]
struct Entry {
    /// Exact copy of the input carrier used for hit confirmation:
    /// fingerprints can collide, bit-compare cannot.
    input: Tensor,
    /// The quantized carrier, shared with in-flight compute stages.
    quantized: Arc<Tensor>,
    /// The packed HBM image (`None` for formats the packer does not
    /// serialize: f32-superset passthrough and block floating point,
    /// whose shared exponents live out of band).
    image: Option<HbmImage>,
    /// Modeled HBM footprint of the packed operand, bytes.
    image_bytes: usize,
    /// Host bytes charged against the budget (carriers + image).
    resident_bytes: usize,
    /// LRU tick of the most recent use.
    last_use: u64,
}

/// One cache lookup's outcome: the quantized operand ready for the
/// compute stage, plus what the pack stage had to do to produce it.
#[derive(Debug, Clone)]
pub struct FetchedOperand {
    /// Quantized carrier (shared, never re-quantized on a hit).
    pub quantized: Arc<Tensor>,
    /// Modeled size of the packed HBM image, bytes.
    pub image_bytes: usize,
    /// `true` when the operand was already resident (no pack work).
    pub hit: bool,
}

/// Cache effectiveness counters, cumulative since construction (or
/// the last [`OperandCache::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident entry.
    pub hits: u64,
    /// Lookups that had to quantize + pack.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Pack operations performed (== `misses`).
    pub packs: u64,
    /// Total bytes packed into HBM images by misses.
    pub bytes_packed: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// A byte-budget LRU cache of quantized, HBM-packed operands.
///
/// # Example
///
/// ```
/// use mpt_fpga::cache::OperandCache;
/// use mpt_formats::Quantizer;
/// use mpt_tensor::Tensor;
///
/// let mut cache = OperandCache::new(1 << 20);
/// let w = Tensor::ones(vec![8, 8]);
/// let q = Quantizer::identity();
/// let first = cache.get_or_pack(&w, &q)?;
/// let second = cache.get_or_pack(&w, &q)?;
/// assert!(!first.hit && second.hit);
/// assert_eq!(cache.stats().packs, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OperandCache {
    budget: usize,
    entries: HashMap<OperandKey, Entry>,
    resident_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl OperandCache {
    /// Creates a cache bounded by `budget_bytes` of resident operands.
    /// A budget of `0` disables residency: every lookup is a miss
    /// (the eager-equivalent configuration used as the bench
    /// baseline).
    pub fn new(budget_bytes: usize) -> Self {
        OperandCache {
            budget: budget_bytes,
            entries: HashMap::new(),
            resident_bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache with the [`DEFAULT_CACHE_BUDGET`].
    pub fn with_default_budget() -> Self {
        Self::new(DEFAULT_CACHE_BUDGET)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.resident_bytes = self.resident_bytes;
        s.entries = self.entries.len();
        s
    }

    /// Zeroes the cumulative counters (resident entries stay).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops every resident entry (counters stay).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    /// Returns the quantized, packed form of `t` under `q`, reusing a
    /// resident copy when the exact same bits were packed before.
    ///
    /// On a miss the operand is quantized at global coordinates
    /// (`quantize_matrix(t, q, 0, 0)` — exactly what the eager
    /// simulator host does) and packed into an HBM image, then
    /// inserted under the LRU byte budget.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `t` is not a matrix.
    pub fn get_or_pack(&mut self, t: &Tensor, q: &Quantizer) -> Result<FetchedOperand, ShapeError> {
        let (rows, cols) = t.as_matrix()?;
        let key = OperandKey {
            fingerprint: carrier_fingerprint(t.data()),
            rows,
            cols,
            quant: quantizer_fingerprint(q),
        };
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            // Confirm the hit bit-for-bit: a fingerprint collision
            // must repack, never serve another tensor's image.
            if bits_equal(entry.input.data(), t.data()) {
                entry.last_use = self.tick;
                self.stats.hits += 1;
                bump("fpga.cache.hit");
                return Ok(FetchedOperand {
                    quantized: Arc::clone(&entry.quantized),
                    image_bytes: entry.image_bytes,
                    hit: true,
                });
            }
            if let Some(e) = self.entries.remove(&key) {
                self.resident_bytes -= e.resident_bytes;
            }
        }
        self.stats.misses += 1;
        bump("fpga.cache.miss");

        let quantized = Arc::new(quantize_matrix(t, q, 0, 0));
        let (image, image_bytes) = pack_image(&quantized, q);
        self.stats.packs += 1;
        self.stats.bytes_packed += image_bytes as u64;
        if mpt_telemetry::enabled() {
            mpt_telemetry::counter("fpga.cache.bytes_packed").add(image_bytes as u64);
        }

        let resident_bytes = 2 * t.data().len() * std::mem::size_of::<f32>() + image_bytes;
        let fetched = FetchedOperand {
            quantized: Arc::clone(&quantized),
            image_bytes,
            hit: false,
        };
        if resident_bytes <= self.budget {
            self.evict_to_fit(resident_bytes);
            self.resident_bytes += resident_bytes;
            self.entries.insert(
                key,
                Entry {
                    input: t.clone(),
                    quantized,
                    image,
                    image_bytes,
                    resident_bytes,
                    last_use: self.tick,
                },
            );
        }
        Ok(fetched)
    }

    /// The resident HBM image for `t` under `q`, if any — the transfer
    /// stage re-sends this image on a faulted HBM transfer without
    /// re-running the pack stage.
    pub fn image_of(&self, t: &Tensor, q: &Quantizer) -> Option<&HbmImage> {
        let (rows, cols) = t.as_matrix().ok()?;
        let key = OperandKey {
            fingerprint: carrier_fingerprint(t.data()),
            rows,
            cols,
            quant: quantizer_fingerprint(q),
        };
        let entry = self.entries.get(&key)?;
        bits_equal(entry.input.data(), t.data())
            .then_some(entry.image.as_ref())
            .flatten()
    }

    /// Evicts least-recently-used entries until `incoming` more bytes
    /// fit in the budget.
    fn evict_to_fit(&mut self, incoming: usize) {
        while self.resident_bytes + incoming > self.budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("non-empty cache has an LRU victim");
            if let Some(e) = self.entries.remove(&victim) {
                self.resident_bytes -= e.resident_bytes;
                self.stats.evictions += 1;
                bump("fpga.cache.evict");
            }
        }
    }
}

/// Packs the quantized carrier into an HBM image where the format
/// supports dense serialization. F32-superset formats pass carriers
/// through untouched (nothing narrower to pack), block floating
/// point stores its shared exponents out of band, and a
/// [`Rounding::NoRound`] quantizer deliberately leaves values *off*
/// the format lattice (the fused-multiplier convention), so all three
/// are modeled by footprint only: `numel · bits / 8`, no image.
fn pack_image(quantized: &Tensor, q: &Quantizer) -> (Option<HbmImage>, usize) {
    let format = q.format();
    let packable = !matches!(q.rounding(), Rounding::NoRound)
        && match format {
            NumberFormat::Float(_) | NumberFormat::Fixed(_) => !format.is_f32_superset(),
            NumberFormat::BlockFp(_) => false,
        };
    if packable {
        let image = HbmImage::pack(quantized, format).expect("cache operands are matrices");
        let bytes = image.byte_size();
        (Some(image), bytes)
    } else {
        let bytes = quantized.data().len() * format.bit_width() as usize / 8;
        (None, bytes)
    }
}

/// FNV-1a over the raw bit patterns of the carrier. Bit patterns, not
/// float values: `-0.0` and `0.0` (or two NaN payloads) quantize the
/// same today, but distinguishing them costs nothing and keeps the
/// cache correct under any future format.
fn carrier_fingerprint(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// FNV-1a over the quantizer's behavioural identity: format, rounding
/// mode (including SR bit count) and the stochastic seed.
fn quantizer_fingerprint(q: &Quantizer) -> u64 {
    let desc = format!("{:?}|{:?}|{}", q.format(), q.rounding(), q.rng().seed());
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in desc.as_bytes() {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Exact carrier equality at the bit level (NaN-safe, `-0.0 ≠ 0.0`).
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Increments a telemetry counter when telemetry is armed.
fn bump(name: &str) {
    if mpt_telemetry::enabled() {
        mpt_telemetry::counter(name).incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_formats::{FloatFormat, Rounding};

    fn weight(seed: usize) -> Tensor {
        Tensor::from_fn(vec![6, 10], |i| {
            (((i + seed) * 37 % 41) as f32 - 20.0) * 0.05
        })
    }

    fn fp8() -> Quantizer {
        Quantizer::float(FloatFormat::e5m2(), Rounding::Nearest)
    }

    #[test]
    fn second_lookup_hits_and_shares_quantized_carrier() {
        let mut cache = OperandCache::with_default_budget();
        let w = weight(0);
        let q = fp8();
        let miss = cache.get_or_pack(&w, &q).unwrap();
        let hit = cache.get_or_pack(&w, &q).unwrap();
        assert!(!miss.hit);
        assert!(hit.hit);
        assert_eq!(miss.quantized, hit.quantized);
        assert_eq!(*hit.quantized, quantize_matrix(&w, &q, 0, 0));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.packs), (1, 1, 1));
        assert!(s.bytes_packed > 0);
    }

    #[test]
    fn updated_content_invalidates() {
        let mut cache = OperandCache::with_default_budget();
        let q = fp8();
        cache.get_or_pack(&weight(0), &q).unwrap();
        let updated = cache.get_or_pack(&weight(1), &q).unwrap();
        assert!(!updated.hit, "changed bits must repack");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn quantizer_identity_is_part_of_the_key() {
        let mut cache = OperandCache::with_default_budget();
        let w = weight(0);
        let sr1 = Quantizer::float(FloatFormat::e5m2(), Rounding::stochastic()).with_seed(1);
        let sr2 = Quantizer::float(FloatFormat::e5m2(), Rounding::stochastic()).with_seed(2);
        cache.get_or_pack(&w, &sr1).unwrap();
        assert!(
            !cache.get_or_pack(&w, &sr2).unwrap().hit,
            "seed changes bits"
        );
        assert!(
            !cache.get_or_pack(&w, &fp8()).unwrap().hit,
            "mode changes bits"
        );
        assert!(cache.get_or_pack(&w, &sr1).unwrap().hit);
    }

    #[test]
    fn negative_zero_is_a_different_operand() {
        let mut cache = OperandCache::with_default_budget();
        let q = fp8();
        let pos = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let neg = Tensor::from_vec(vec![1, 2], vec![-0.0, 1.0]).unwrap();
        cache.get_or_pack(&pos, &q).unwrap();
        assert!(!cache.get_or_pack(&neg, &q).unwrap().hit);
    }

    #[test]
    fn lru_evicts_under_byte_budget() {
        // Budget for roughly one entry: inserting a second evicts the
        // least recently used first.
        let q = fp8();
        let one = cache_entry_bytes(&weight(0), &q);
        let mut cache = OperandCache::new(one + one / 2);
        cache.get_or_pack(&weight(0), &q).unwrap();
        cache.get_or_pack(&weight(1), &q).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        assert!(s.resident_bytes <= cache.budget_bytes());
        // The survivor is the newer entry.
        assert!(cache.get_or_pack(&weight(1), &q).unwrap().hit);
        assert!(!cache.get_or_pack(&weight(0), &q).unwrap().hit);
    }

    fn cache_entry_bytes(t: &Tensor, q: &Quantizer) -> usize {
        let quantized = quantize_matrix(t, q, 0, 0);
        let (_, image_bytes) = pack_image(&quantized, q);
        2 * t.data().len() * std::mem::size_of::<f32>() + image_bytes
    }

    #[test]
    fn zero_budget_disables_residency() {
        let mut cache = OperandCache::new(0);
        let q = fp8();
        for _ in 0..3 {
            assert!(!cache.get_or_pack(&weight(0), &q).unwrap().hit);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.entries, 0);
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn block_fp_and_identity_formats_are_cacheable_without_images() {
        let mut cache = OperandCache::with_default_budget();
        let w = weight(0);
        let idn = Quantizer::identity();
        let bfp = Quantizer::new(
            mpt_formats::BlockFpFormat::new(8, 8).unwrap(),
            Rounding::Nearest,
        );
        for q in [idn, bfp] {
            assert!(!cache.get_or_pack(&w, &q).unwrap().hit);
            assert!(cache.get_or_pack(&w, &q).unwrap().hit);
            assert!(cache.image_of(&w, &q).is_none(), "no dense image");
        }
    }

    #[test]
    fn resident_image_round_trips() {
        let mut cache = OperandCache::with_default_budget();
        let w = weight(0);
        let q = fp8();
        let fetched = cache.get_or_pack(&w, &q).unwrap();
        let image = cache.image_of(&w, &q).expect("fp8 packs densely");
        assert_eq!(image.unpack().unwrap(), *fetched.quantized);
        assert_eq!(image.byte_size(), fetched.image_bytes);
    }
}
