//! Per-GEMM mapping optimization (paper Section IV-B).
//!
//! Two coupled decisions minimize padding overhead for each GEMM:
//! feed the inputs in **original or transposed** form (swapping `n`
//! and `m`), and choose **which input to partition** across the
//! cores. The paper brute-forces every combination and keeps the one
//! with the lowest estimated latency; so do we.

use crate::config::SaConfig;
use crate::padding::PaddedGemm;
use crate::perf::{estimate_padded, Latency};
use mpt_arith::GemmShape;

/// Which input is split across the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Partition `A` (split output rows across cores).
    A,
    /// Partition `B` (split output columns across cores).
    B,
}

/// A chosen mapping for one GEMM: transposition, partitioned input,
/// the resulting padded shape and its estimated latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmMapping {
    /// The logical (untransformed) problem.
    pub shape: GemmShape,
    /// Whether the problem is fed transposed (`Bᵀ·Aᵀ = Cᵀ`).
    pub transposed: bool,
    /// Which input is partitioned across cores.
    pub partition: Partition,
    /// The padded dimensions of the *effective* (possibly transposed)
    /// problem with the partitioned input mapped to rows.
    pub padded: PaddedGemm,
    /// Estimated latency under the performance model.
    pub latency: Latency,
}

impl GemmMapping {
    /// The shape actually fed to the padding pipeline: transposition
    /// swaps `n↔m`, and partitioning `B` swaps the roles of rows and
    /// columns (the row dimension is always the partitioned one in
    /// the model).
    pub fn effective_shape(&self) -> GemmShape {
        effective_shape(self.shape, self.transposed, self.partition)
    }
}

fn effective_shape(shape: GemmShape, transposed: bool, partition: Partition) -> GemmShape {
    let s = if transposed {
        shape.transposed()
    } else {
        shape
    };
    match partition {
        Partition::A => s,
        // Partitioning B: the model always splits the row operand, so
        // view the problem as Cᵀ = Bᵀ·Aᵀ with Bᵀ's rows partitioned.
        Partition::B => s.transposed(),
    }
}

/// Brute-forces the four mapping combinations for one GEMM and
/// returns the lowest-latency one (ties keep the earliest in
/// enumeration order: original/A first).
pub fn best_mapping(
    shape: GemmShape,
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> GemmMapping {
    let mut best: Option<GemmMapping> = None;
    for transposed in [false, true] {
        for partition in [Partition::A, Partition::B] {
            let eff = effective_shape(shape, transposed, partition);
            let padded = PaddedGemm::new(eff, cfg, in_bits);
            let latency = estimate_padded(&padded, cfg, freq_mhz, in_bits, out_bits);
            let candidate = GemmMapping {
                shape,
                transposed,
                partition,
                padded,
                latency,
            };
            match &best {
                Some(b) if b.latency.total_s <= latency.total_s => {}
                _ => best = Some(candidate),
            }
        }
    }
    best.expect("four candidates always exist")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize, c: usize) -> SaConfig {
        SaConfig::new(n, m, c).expect("valid")
    }

    #[test]
    fn effective_shape_combinations() {
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(effective_shape(s, false, Partition::A), s);
        assert_eq!(
            effective_shape(s, true, Partition::A),
            GemmShape::new(30, 20, 10)
        );
        assert_eq!(
            effective_shape(s, false, Partition::B),
            GemmShape::new(30, 20, 10)
        );
        assert_eq!(effective_shape(s, true, Partition::B), s);
    }

    #[test]
    fn ties_on_compute_break_on_data_traffic() {
        // For (4096, 128, 8) on an 8x8x8 array, partitioning either
        // input costs identical MAC time (both pad to the same tile
        // volume), so the optimizer must pick the mapping with the
        // smaller PCIe footprint — the one that keeps the short
        // dimension partitioned (tiny output replication).
        let c = cfg(8, 8, 8);
        let best = best_mapping(GemmShape::new(4096, 128, 8), c, 200.0, 8, 8);
        let canonical = PaddedGemm::new(GemmShape::new(4096, 128, 8), c, 8);
        let canonical_lat = estimate_padded(&canonical, c, 200.0, 8, 8);
        assert!((best.latency.mac_s - canonical_lat.mac_s).abs() < 1e-12);
        assert!(best.latency.data_s < canonical_lat.data_s, "{best:?}");
    }

    #[test]
    fn symmetric_problem_keeps_canonical_mapping() {
        // A fully tile-aligned square GEMM gains nothing from any
        // transformation; enumeration order keeps original/A.
        let c = cfg(8, 8, 4);
        let best = best_mapping(GemmShape::new(512, 512, 512), c, 200.0, 8, 8);
        assert!(!best.transposed);
        assert_eq!(best.partition, Partition::A);
    }

    #[test]
    fn best_is_minimum_of_all_four() {
        let c = cfg(8, 4, 3);
        let shape = GemmShape::new(100, 37, 65);
        let best = best_mapping(shape, c, 250.0, 8, 8);
        for transposed in [false, true] {
            for partition in [Partition::A, Partition::B] {
                let eff = effective_shape(shape, transposed, partition);
                let padded = PaddedGemm::new(eff, c, 8);
                let lat = estimate_padded(&padded, c, 250.0, 8, 8);
                assert!(
                    best.latency.total_s <= lat.total_s + 1e-18,
                    "{transposed}/{partition:?} beats the chosen mapping"
                );
            }
        }
    }

    #[test]
    fn mapping_beats_naive_for_awkward_shapes() {
        // The whole point of Section IV-B: optimized mapping is never
        // worse than always-partition-A, and strictly better for
        // shapes whose row count is tiny.
        let c = cfg(16, 8, 10);
        let shape = GemmShape::new(6, 400, 5000);
        let naive = PaddedGemm::new(shape, c, 8);
        let naive_lat = estimate_padded(&naive, c, 180.0, 8, 8);
        let best = best_mapping(shape, c, 180.0, 8, 8);
        assert!(
            best.latency.total_s < naive_lat.total_s,
            "optimized {} vs naive {}",
            best.latency.total_s,
            naive_lat.total_s
        );
    }
}
