//! Fault-tolerant launch orchestration: retry with exponential
//! backoff, then graceful degradation.
//!
//! One function, [`resilient_execute`], is the recovery loop shared
//! by [`FpgaBackend`](crate::FpgaBackend) and `mpt_core::Device`:
//! each launch consults the armed [`Injector`] at every fault site
//! (bitstream load, HBM transfer, kernel launch), retries under a
//! [`RetryPolicy`], and — when the budget is exhausted — tells the
//! caller to degrade to the bit-identical CPU emulation path. Because
//! every execution path produces the same bits, recovery never
//! perturbs training: a faulted run must reproduce the fault-free
//! golden weight digest (enforced by the conformance chaos suite).
//!
//! The HBM site is modeled concretely: the quantized `A` operand is
//! packed into a CRC-checked [`HbmImage`], the
//! injector corrupts one byte "in flight", and the CRC verification
//! on arrival must catch it — re-sending on the next attempt.

use crate::hbm::HbmImage;
use mpt_arith::{quantize_matrix, QGemmConfig};
use mpt_faults::{Fault, FaultSite, Injector, RetryPolicy, Trigger};
use mpt_formats::NumberFormat;
use mpt_tensor::{ShapeError, Tensor};

/// Runs `launch` with fault injection, retry and backoff.
///
/// Returns `Ok(Some(result))` when an attempt succeeds,
/// `Ok(None)` when the retry budget is exhausted and the caller must
/// fall back to CPU emulation (the `fault` telemetry events have
/// already been emitted; the caller emits its `fallback` event), or
/// `Err` for real shape errors, which are never retried.
pub fn resilient_execute<T>(
    inj: &Injector,
    retry: &RetryPolicy,
    layer: &'static str,
    a: &Tensor,
    cfg: &QGemmConfig,
    launch: impl Fn() -> Result<T, ShapeError>,
) -> Result<Option<T>, ShapeError> {
    let launch_id = inj.next_launch();
    for attempt in 0..retry.max_attempts {
        match fault_at(inj, launch_id, attempt, a, cfg) {
            None => return launch().map(Some),
            Some(fault) => {
                emit_fault_event(&fault, layer);
                retry.sleep(attempt);
            }
        }
    }
    Ok(None)
}

/// The first fault (if any) the plan injects at this attempt, walking
/// the sites in launch order: bitstream load, HBM transfer, kernel
/// launch.
fn fault_at(
    inj: &Injector,
    launch: u64,
    attempt: u32,
    a: &Tensor,
    cfg: &QGemmConfig,
) -> Option<Fault> {
    if let Some(f) = inj.check(FaultSite::BitstreamLoad, launch, attempt) {
        return Some(f);
    }
    if let Some(f) = hbm_transfer(inj, launch, attempt, a, cfg) {
        return Some(f);
    }
    if let Some(f) = inj.check(FaultSite::LaunchTimeout, launch, attempt) {
        return Some(f);
    }
    inj.check(FaultSite::LaunchTransient, launch, attempt)
}

/// Models the HBM transfer of the quantized `A` operand through a
/// CRC-checked image. Only materialized when the plan can fire the
/// `HbmCorruption` site (the transfer itself is a host-side identity,
/// so skipping it fault-free changes nothing).
fn hbm_transfer(
    inj: &Injector,
    launch: u64,
    attempt: u32,
    a: &Tensor,
    cfg: &QGemmConfig,
) -> Option<Fault> {
    if matches!(inj.plan().trigger(FaultSite::HbmCorruption), Trigger::Never) {
        return None;
    }
    // Non-matrix operands and block formats (out-of-band exponent
    // packing) fail in the launch itself; nothing to transfer here.
    if a.as_matrix().is_err() {
        return None;
    }
    let fmt = cfg.quant_a.format();
    if matches!(fmt, NumberFormat::BlockFp(_)) {
        return None;
    }
    let aq = quantize_matrix(a, &cfg.quant_a, 0, 0);
    let mut img = HbmImage::pack(&aq, fmt).expect("quantized operand is a matrix");
    match inj.check(FaultSite::HbmCorruption, launch, attempt) {
        Some(fault) => {
            let (byte, mask) = inj.corruption(img.byte_size(), launch);
            img.corrupt_byte(byte, mask);
            assert!(
                img.unpack().is_err(),
                "CRC-32 must catch a corrupted transfer byte"
            );
            Some(fault)
        }
        None => {
            img.verify().expect("uncorrupted image verifies");
            None
        }
    }
}

/// Emits the `fault` telemetry event and counter for one injected
/// fault. No-op when telemetry is disabled.
pub fn emit_fault_event(fault: &Fault, layer: &'static str) {
    if !mpt_telemetry::enabled() {
        return;
    }
    mpt_telemetry::event(&[
        mpt_telemetry::json::Field::Str("type", "fault"),
        mpt_telemetry::json::Field::Str("layer", layer),
        mpt_telemetry::json::Field::Str("site", fault.site.name()),
        mpt_telemetry::json::Field::U64("launch", fault.launch),
        mpt_telemetry::json::Field::U64("attempt", fault.attempt as u64),
    ]);
    mpt_telemetry::counter(&format!("fault.injected.{}", fault.site.name())).incr();
}

/// Emits the `fallback` telemetry event and counter when a launch
/// degrades to the CPU path. No-op when telemetry is disabled.
pub fn emit_fallback_event(layer: &'static str, launch: u64, attempts: u32) {
    if !mpt_telemetry::enabled() {
        return;
    }
    mpt_telemetry::event(&[
        mpt_telemetry::json::Field::Str("type", "fallback"),
        mpt_telemetry::json::Field::Str("layer", layer),
        mpt_telemetry::json::Field::U64("launch", launch),
        mpt_telemetry::json::Field::U64("attempts", attempts as u64),
    ]);
    mpt_telemetry::counter("fault.fallback").incr();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_faults::FaultPlan;

    fn operands() -> (Tensor, Tensor) {
        (
            Tensor::from_fn(vec![5, 7], |i| ((i * 13 % 17) as f32 - 8.0) * 0.1),
            Tensor::from_fn(vec![7, 3], |i| ((i * 11 % 13) as f32 - 6.0) * 0.1),
        )
    }

    #[test]
    fn fault_free_plan_launches_first_try() {
        let inj = Injector::new(FaultPlan::new(0));
        let (a, b) = operands();
        let cfg = QGemmConfig::fp8_fp12_sr();
        let calls = std::cell::Cell::new(0u32);
        let out = resilient_execute(&inj, &RetryPolicy::no_delay(3), "test", &a, &cfg, || {
            calls.set(calls.get() + 1);
            mpt_arith::qgemm(&a, &b, &cfg)
        })
        .unwrap();
        assert!(out.is_some());
        assert_eq!(calls.get(), 1);
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn transient_fault_recovers_on_retry() {
        let inj =
            Injector::new(FaultPlan::new(1).with(FaultSite::LaunchTransient, Trigger::EveryNth(1)));
        let (a, b) = operands();
        let cfg = QGemmConfig::fp8_fp12_sr();
        let out = resilient_execute(&inj, &RetryPolicy::no_delay(3), "test", &a, &cfg, || {
            mpt_arith::qgemm(&a, &b, &cfg)
        })
        .unwrap();
        assert!(out.is_some(), "retry must recover a first-attempt fault");
        assert_eq!(inj.injected_at(FaultSite::LaunchTransient), 1);
    }

    #[test]
    fn sticky_fault_exhausts_budget() {
        let inj = Injector::new(
            FaultPlan::new(1).with(FaultSite::LaunchTimeout, Trigger::StickyAtLaunch(1)),
        );
        let (a, b) = operands();
        let cfg = QGemmConfig::fp8_fp12_sr();
        let out = resilient_execute(&inj, &RetryPolicy::no_delay(3), "test", &a, &cfg, || {
            mpt_arith::qgemm(&a, &b, &cfg)
        })
        .unwrap();
        assert!(out.is_none(), "sticky fault must force CPU fallback");
        assert_eq!(inj.injected_at(FaultSite::LaunchTimeout), 3);
    }

    #[test]
    fn hbm_corruption_is_caught_and_retried() {
        let inj =
            Injector::new(FaultPlan::new(2).with(FaultSite::HbmCorruption, Trigger::AtLaunch(1)));
        let (a, b) = operands();
        let cfg = QGemmConfig::fp8_fp12_sr();
        let out = resilient_execute(&inj, &RetryPolicy::no_delay(3), "test", &a, &cfg, || {
            mpt_arith::qgemm(&a, &b, &cfg)
        })
        .unwrap();
        assert!(out.is_some(), "re-sent transfer must succeed");
        assert_eq!(inj.injected_at(FaultSite::HbmCorruption), 1);
    }

    #[test]
    fn shape_errors_are_not_retried() {
        let inj = Injector::new(FaultPlan::new(0));
        let a = Tensor::zeros(vec![3, 4]);
        let b = Tensor::zeros(vec![5, 2]);
        let cfg = QGemmConfig::fp32();
        let calls = std::cell::Cell::new(0u32);
        let res = resilient_execute(&inj, &RetryPolicy::no_delay(5), "test", &a, &cfg, || {
            calls.set(calls.get() + 1);
            mpt_arith::qgemm(&a, &b, &cfg)
        });
        assert!(res.is_err());
        assert_eq!(calls.get(), 1, "real errors must surface immediately");
    }
}
