//! [`GemmBackend`] implementation: training through the accelerator.
//!
//! Wrapping an [`Accelerator`] as [`FpgaBackend`] lets the `mpt-nn`
//! tape execute every quantized GEMM of a training step on the
//! simulated hardware — the paper's `device='fpga'` — while
//! accumulating the measured latency of each launch. Functional
//! results stay bit-identical to the CPU path.
//!
//! The backend is fault-tolerant: arming a [`FaultPlan`] (via
//! [`FpgaBackend::with_fault_plan`]) routes every launch through the
//! retry/backoff loop of [`crate::resilient_execute`], and launches
//! whose retry budget is exhausted degrade to the bit-identical CPU
//! emulation kernel — so training completes with the same weights as
//! a fault-free run. With no plan armed the fault machinery is fully
//! inert: the hot path pays a single `Option` check per launch.

use crate::cache::{CacheStats, DEFAULT_CACHE_BUDGET};
use crate::pipeline::PipelinedExecutor;
use crate::resilient::{emit_fallback_event, resilient_execute};
use crate::sim::Accelerator;
use mpt_arith::{default_threads, qgemm_parallel, GemmBackend, QGemmConfig};
use mpt_faults::{FaultPlan, Injector, RetryPolicy};
use mpt_tensor::{ShapeError, Tensor};
use std::cell::{Cell, RefCell};

/// A GEMM backend that executes on the simulated FPGA accelerator and
/// keeps a running account of measured hardware time.
///
/// # Example
///
/// ```
/// use mpt_fpga::{Accelerator, FpgaBackend, SaConfig};
/// use mpt_arith::{GemmBackend, QGemmConfig};
/// use mpt_tensor::Tensor;
///
/// let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2)?, 328.4));
/// let a = Tensor::ones(vec![3, 5]);
/// let b = Tensor::ones(vec![5, 2]);
/// backend.gemm(&a, &b, &QGemmConfig::fp8_fp12_sr())?;
/// assert_eq!(backend.gemm_count(), 1);
/// assert!(backend.elapsed_s() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FpgaBackend {
    accelerator: Accelerator,
    elapsed_s: RefCell<f64>,
    gemms: Cell<usize>,
    injector: Option<Injector>,
    retry: RetryPolicy,
    fallbacks: Cell<u64>,
    /// Staged execution engine; `None` means eager launches.
    pipeline: Option<RefCell<PipelinedExecutor>>,
}

impl FpgaBackend {
    /// Wraps an accelerator. Fault injection is disarmed and the
    /// default [`RetryPolicy`] applies if a plan is armed later.
    pub fn new(accelerator: Accelerator) -> Self {
        FpgaBackend {
            accelerator,
            elapsed_s: RefCell::new(0.0),
            gemms: Cell::new(0),
            injector: None,
            retry: RetryPolicy::default(),
            fallbacks: Cell::new(0),
            pipeline: None,
        }
    }

    /// Switches to staged, double-buffered execution with the default
    /// operand-cache budget. Functionally bit-identical to the eager
    /// mode (asserted by the conformance suite); latency is accounted
    /// by the overlap-aware pipeline clock, and reused operands are
    /// quantized + packed once.
    ///
    /// # Example
    ///
    /// ```
    /// use mpt_fpga::{Accelerator, FpgaBackend, SaConfig};
    /// use mpt_arith::{GemmBackend, QGemmConfig};
    /// use mpt_tensor::Tensor;
    ///
    /// let backend =
    ///     FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2)?, 328.4)).pipelined();
    /// let w = Tensor::ones(vec![5, 2]);
    /// let x = Tensor::ones(vec![3, 5]);
    /// backend.gemm(&x, &w, &QGemmConfig::fp8_fp12_sr())?;
    /// backend.gemm(&x, &w, &QGemmConfig::fp8_fp12_sr())?; // weight is resident now
    /// let stats = backend.cache_stats().unwrap();
    /// assert_eq!(stats.hits, 2); // second launch packs nothing
    /// backend.step_boundary(); // drain the queue at the step boundary
    /// assert!(backend.pipelined_elapsed_s() > 0.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn pipelined(self) -> Self {
        self.pipelined_with_budget(DEFAULT_CACHE_BUDGET)
    }

    /// Staged execution with an explicit operand-cache byte budget
    /// (`0` disables caching: every launch packs — the eager-
    /// equivalent baseline the bench harness measures against).
    pub fn pipelined_with_budget(mut self, budget_bytes: usize) -> Self {
        self.pipeline = Some(RefCell::new(PipelinedExecutor::new(
            self.accelerator.clone(),
            budget_bytes,
        )));
        self
    }

    /// Arms a deterministic fault schedule: every launch now runs
    /// through the retry/backoff/fallback loop.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(Injector::new(plan));
        self
    }

    /// Overrides the retry policy (attempts / backoff delays).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The wrapped accelerator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// The armed injector, if any (tests assert its tallies).
    pub fn injector(&self) -> Option<&Injector> {
        self.injector.as_ref()
    }

    /// Total measured hardware time accumulated so far, seconds.
    /// Always the *eager-equivalent* account (Σ per-launch stage
    /// sums), comparable across execution modes; the overlapped
    /// figure of the staged mode is
    /// [`pipelined_elapsed_s`](Self::pipelined_elapsed_s).
    pub fn elapsed_s(&self) -> f64 {
        *self.elapsed_s.borrow()
    }

    /// `true` when staged (pipelined) execution is enabled.
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Operand-cache counters of the staged mode (`None` when eager).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.pipeline.as_ref().map(|p| p.borrow().cache_stats())
    }

    /// Overlap-aware hardware time of the staged mode: drained queues
    /// plus the live one. `0.0` in eager mode (nothing overlaps).
    pub fn pipelined_elapsed_s(&self) -> f64 {
        self.pipeline
            .as_ref()
            .map(|p| p.borrow().pipelined_elapsed_s())
            .unwrap_or(0.0)
    }

    /// Number of GEMM launches so far.
    pub fn gemm_count(&self) -> usize {
        self.gemms.get()
    }

    /// Number of launches that degraded to the CPU path after
    /// exhausting their retry budget.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.get()
    }

    /// Resets the accumulated counters (not the injector's schedule;
    /// cached operands stay resident).
    pub fn reset(&self) {
        *self.elapsed_s.borrow_mut() = 0.0;
        self.gemms.set(0);
        self.fallbacks.set(0);
        if let Some(p) = &self.pipeline {
            p.borrow_mut().reset_accounting();
        }
    }

    /// One hardware launch with latency accounting and telemetry —
    /// the fault-free execution path.
    fn launch(&self, a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError> {
        let mut span =
            mpt_arith::gemm_span("gemm:fpga", a, b, cfg, self.accelerator.config().c() as u64);
        let (out, latency) = self.accelerator.execute(a, b, cfg)?;
        *self.elapsed_s.borrow_mut() += latency.total_s;
        self.gemms.set(self.gemms.get() + 1);
        if span.is_active() {
            span.field(mpt_telemetry::SpanField::F64("hw_total_s", latency.total_s))
                .field(mpt_telemetry::SpanField::U64(
                    "hw_cycles",
                    latency.core_cycles,
                ));
            // Per-GEMM perf-model calibration: the analytic L_total
            // (Section IV-A) against the cycle-accurate simulation,
            // at the operand width the simulator itself accounts.
            if let (&[n, k], &[_, m]) = (a.shape(), b.shape()) {
                let bits = cfg.quant_a.format().bit_width();
                let predicted = crate::perf::estimate_gemm(
                    mpt_arith::GemmShape::new(n, k, m),
                    self.accelerator.config(),
                    self.accelerator.freq_mhz(),
                    bits,
                    bits,
                );
                mpt_telemetry::record_calibration(mpt_telemetry::CalibrationRecord {
                    context: "fpga_gemm".into(),
                    label: format!("{n}x{k}x{m}@{}", self.accelerator.config()),
                    predicted_s: predicted.total_s,
                    measured_s: latency.total_s,
                });
            }
        }
        Ok(out)
    }

    /// One staged launch through the pipelined executor, with the
    /// same telemetry and fallback contract as the eager path.
    fn launch_pipelined(
        &self,
        px: &RefCell<PipelinedExecutor>,
        a: &Tensor,
        b: &Tensor,
        cfg: &QGemmConfig,
    ) -> Result<Tensor, ShapeError> {
        let mut span = mpt_arith::gemm_span(
            "gemm:fpga-pipelined",
            a,
            b,
            cfg,
            self.accelerator.config().c() as u64,
        );
        let outcome = match &self.injector {
            None => px.borrow_mut().launch(a, b, cfg).map(Some)?,
            Some(inj) => px
                .borrow_mut()
                .launch_resilient(inj, &self.retry, a, b, cfg)?,
        };
        match outcome {
            Some((out, times)) => {
                *self.elapsed_s.borrow_mut() += times.eager_s();
                self.gemms.set(self.gemms.get() + 1);
                if span.is_active() {
                    span.field(mpt_telemetry::SpanField::F64("hw_eager_s", times.eager_s()))
                        .field(mpt_telemetry::SpanField::F64(
                            "hw_bottleneck_s",
                            times.bottleneck_s(),
                        ));
                    // Eager-vs-pipelined calibration: the analytic
                    // stage model against the simulator's staged
                    // accounting (cache effects and the PCIe
                    // efficiency gap included in "measured").
                    if let (&[n, k], &[_, m]) = (a.shape(), b.shape()) {
                        let bits = cfg.quant_a.format().bit_width();
                        let shape = mpt_arith::GemmShape::new(n, k, m);
                        let sa = self.accelerator.config();
                        let freq = self.accelerator.freq_mhz();
                        let label = format!("{n}x{k}x{m}@{sa}");
                        let stages = crate::perf::estimate_gemm_stages(shape, sa, freq, bits, bits);
                        mpt_telemetry::record_calibration(mpt_telemetry::CalibrationRecord {
                            context: "fpga_gemm".into(),
                            label: label.clone(),
                            predicted_s: stages.eager_s(),
                            measured_s: times.eager_s(),
                        });
                        mpt_telemetry::record_calibration(mpt_telemetry::CalibrationRecord {
                            context: "fpga_gemm_pipelined".into(),
                            label,
                            predicted_s: stages.bottleneck_s(),
                            measured_s: times.bottleneck_s(),
                        });
                    }
                }
                Ok(out)
            }
            None => {
                let inj = self.injector.as_ref().expect("fallback requires injector");
                self.fallbacks.set(self.fallbacks.get() + 1);
                emit_fallback_event(
                    "fpga-pipelined",
                    inj.launch_count(),
                    self.retry.max_attempts,
                );
                let threads = default_threads();
                let _span = mpt_arith::gemm_span("gemm:fallback", a, b, cfg, threads as u64);
                qgemm_parallel(a, b, cfg, threads)
            }
        }
    }
}

impl GemmBackend for FpgaBackend {
    fn gemm(&self, a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError> {
        // Staged mode: cache-aware pack + overlap-aware accounting,
        // with its own per-stage fault retry.
        if let Some(px) = &self.pipeline {
            return self.launch_pipelined(px, a, b, cfg);
        }
        // Fault-free configuration: the direct hardware launch. This
        // branch is the whole cost of the inert fault layer.
        let Some(inj) = &self.injector else {
            return self.launch(a, b, cfg);
        };
        match resilient_execute(inj, &self.retry, "fpga", a, cfg, || self.launch(a, b, cfg))? {
            Some(out) => Ok(out),
            None => {
                // Retry budget exhausted: degrade to the bit-identical
                // CPU emulation kernel so training continues with the
                // exact same numbers (no hardware time accounted).
                self.fallbacks.set(self.fallbacks.get() + 1);
                emit_fallback_event("fpga", inj.launch_count(), self.retry.max_attempts);
                let threads = default_threads();
                let _span = mpt_arith::gemm_span("gemm:fallback", a, b, cfg, threads as u64);
                qgemm_parallel(a, b, cfg, threads)
            }
        }
    }

    fn label(&self) -> String {
        format!(
            "fpga{}{}@{:.1}MHz",
            if self.is_pipelined() {
                "-pipelined"
            } else {
                ""
            },
            self.accelerator.config(),
            self.accelerator.freq_mhz()
        )
    }

    /// A training-step boundary drains the staged launch queue: the
    /// overlapped makespan moves into the accumulated total and the
    /// clock returns to idle. The operand cache keeps its residents —
    /// updated weights re-key themselves by content. No-op in eager
    /// mode.
    fn step_boundary(&self) {
        if let Some(px) = &self.pipeline {
            px.borrow_mut().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SaConfig;
    use mpt_arith::{qgemm, CpuBackend};

    #[test]
    fn matches_cpu_backend_bitwise() {
        let a = Tensor::from_fn(vec![9, 13], |i| ((i * 29 % 31) as f32 - 15.0) * 0.04);
        let b = Tensor::from_fn(vec![13, 6], |i| ((i * 23 % 29) as f32 - 14.0) * 0.05);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(8);
        let fpga = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 4, 3).unwrap(), 197.7));
        let cpu = CpuBackend::new();
        assert_eq!(
            fpga.gemm(&a, &b, &cfg).unwrap(),
            cpu.gemm(&a, &b, &cfg).unwrap()
        );
        assert_eq!(
            fpga.gemm(&a, &b, &cfg).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
    }

    #[test]
    fn accounts_time_and_launches() {
        let a = Tensor::ones(vec![4, 4]);
        let b = Tensor::ones(vec![4, 4]);
        let cfg = QGemmConfig::fp8_fp12_sr();
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(2, 2, 1).unwrap(), 320.1));
        for _ in 0..3 {
            backend.gemm(&a, &b, &cfg).unwrap();
        }
        assert_eq!(backend.gemm_count(), 3);
        assert!(backend.elapsed_s() > 0.0);
        backend.reset();
        assert_eq!(backend.gemm_count(), 0);
        assert_eq!(backend.elapsed_s(), 0.0);
    }

    #[test]
    fn label_names_configuration() {
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 8, 4).unwrap(), 298.0));
        assert_eq!(backend.label(), "fpga<8,8,4>@298.0MHz");
    }

    #[test]
    fn pipelined_mode_matches_eager_bitwise() {
        let a = Tensor::from_fn(vec![9, 13], |i| ((i * 29 % 31) as f32 - 15.0) * 0.04);
        let b = Tensor::from_fn(vec![13, 6], |i| ((i * 23 % 29) as f32 - 14.0) * 0.05);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(8);
        let eager = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 4, 3).unwrap(), 197.7));
        let staged =
            FpgaBackend::new(Accelerator::new(SaConfig::new(8, 4, 3).unwrap(), 197.7)).pipelined();
        for _ in 0..3 {
            assert_eq!(
                staged.gemm(&a, &b, &cfg).unwrap(),
                eager.gemm(&a, &b, &cfg).unwrap()
            );
        }
        let stats = staged.cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "one pack per distinct operand");
        assert_eq!(stats.hits, 4, "launches 2..3 are fully resident");
        assert_eq!(staged.label(), "fpga-pipelined<8,4,3>@197.7MHz");
    }

    #[test]
    fn pipelined_step_boundary_drains_queue() {
        let a = Tensor::ones(vec![16, 16]);
        let b = Tensor::ones(vec![16, 16]);
        // with_seed gives A and B distinct SR streams, so the equal
        // carrier bits still occupy two cache entries.
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(1);
        let backend =
            FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2).unwrap(), 300.0)).pipelined();
        for _ in 0..4 {
            backend.gemm(&a, &b, &cfg).unwrap();
        }
        let overlapped = backend.pipelined_elapsed_s();
        let eager = backend.elapsed_s();
        assert!(overlapped > 0.0 && overlapped < eager);
        backend.step_boundary();
        assert!((backend.pipelined_elapsed_s() - overlapped).abs() < 1e-15);
        // New step: the queue restarts from idle, cache stays warm.
        backend.gemm(&a, &b, &cfg).unwrap();
        assert_eq!(backend.cache_stats().unwrap().misses, 2);
    }

    #[test]
    fn pipelined_faults_recover_bit_identically() {
        use mpt_faults::{FaultPlan, FaultSite, RetryPolicy, Trigger};
        let a = Tensor::from_fn(vec![7, 11], |i| ((i * 17 % 23) as f32 - 11.0) * 0.06);
        let b = Tensor::from_fn(vec![11, 4], |i| ((i * 19 % 29) as f32 - 14.0) * 0.03);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(3);
        let plan = FaultPlan::new(42)
            .with(FaultSite::LaunchTimeout, Trigger::EveryNth(2))
            .with(FaultSite::HbmCorruption, Trigger::EveryNth(3))
            .with(FaultSite::LaunchTransient, Trigger::StickyAtLaunch(5));
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2).unwrap(), 328.4))
            .pipelined()
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::no_delay(3));
        let want = qgemm(&a, &b, &cfg).unwrap();
        for _ in 0..6 {
            assert_eq!(backend.gemm(&a, &b, &cfg).unwrap(), want);
        }
        assert_eq!(backend.fallback_count(), 1, "sticky launch 5 degrades");
        let stats = backend.cache_stats().unwrap();
        assert_eq!(
            stats.packs, 2,
            "stage retries must never replay the pack stage"
        );
    }

    #[test]
    fn faulted_launches_recover_bit_identically() {
        use mpt_faults::{FaultPlan, FaultSite, RetryPolicy, Trigger};
        let a = Tensor::from_fn(vec![9, 13], |i| ((i * 29 % 31) as f32 - 15.0) * 0.04);
        let b = Tensor::from_fn(vec![13, 6], |i| ((i * 23 % 29) as f32 - 14.0) * 0.05);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(8);
        let plan = FaultPlan::new(42)
            .with(FaultSite::LaunchTimeout, Trigger::EveryNth(2))
            .with(FaultSite::HbmCorruption, Trigger::EveryNth(3))
            .with(FaultSite::BitstreamLoad, Trigger::AtLaunch(5));
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 4, 3).unwrap(), 197.7))
            .with_fault_plan(plan)
            .with_retry_policy(RetryPolicy::no_delay(3));
        let want = qgemm(&a, &b, &cfg).unwrap();
        for _ in 0..6 {
            assert_eq!(backend.gemm(&a, &b, &cfg).unwrap(), want);
        }
        let inj = backend.injector().unwrap();
        // Sites short-circuit in launch order, so at launch 6 the HBM
        // fault masks the timeout that would also have fired.
        assert_eq!(inj.injected_at(FaultSite::LaunchTimeout), 2); // 2,4
        assert_eq!(inj.injected_at(FaultSite::HbmCorruption), 2); // 3,6
        assert_eq!(inj.injected_at(FaultSite::BitstreamLoad), 1); // 5
        assert_eq!(backend.fallback_count(), 0, "single faults retry clean");
    }

    #[test]
    fn exhausted_retries_fall_back_to_cpu_bit_identically() {
        use mpt_faults::{FaultPlan, FaultSite, RetryPolicy, Trigger};
        let a = Tensor::from_fn(vec![7, 11], |i| ((i * 17 % 23) as f32 - 11.0) * 0.06);
        let b = Tensor::from_fn(vec![11, 4], |i| ((i * 19 % 29) as f32 - 14.0) * 0.03);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(3);
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2).unwrap(), 328.4))
            .with_fault_plan(
                FaultPlan::new(1).with(FaultSite::LaunchTransient, Trigger::StickyAtLaunch(2)),
            )
            .with_retry_policy(RetryPolicy::no_delay(3));
        let want = qgemm(&a, &b, &cfg).unwrap();
        for _ in 0..3 {
            assert_eq!(backend.gemm(&a, &b, &cfg).unwrap(), want);
        }
        assert_eq!(backend.fallback_count(), 1, "launch 2 must degrade");
        assert_eq!(
            backend
                .injector()
                .unwrap()
                .injected_at(FaultSite::LaunchTransient),
            3,
            "sticky fault burns the whole budget"
        );
        assert_eq!(backend.gemm_count(), 2, "fallback is not a hardware launch");
    }
}
