//! [`GemmBackend`] implementation: training through the accelerator.
//!
//! Wrapping an [`Accelerator`] as [`FpgaBackend`] lets the `mpt-nn`
//! tape execute every quantized GEMM of a training step on the
//! simulated hardware — the paper's `device='fpga'` — while
//! accumulating the measured latency of each launch. Functional
//! results stay bit-identical to the CPU path.

use crate::sim::Accelerator;
use mpt_arith::{GemmBackend, QGemmConfig};
use mpt_tensor::{ShapeError, Tensor};
use std::cell::{Cell, RefCell};

/// A GEMM backend that executes on the simulated FPGA accelerator and
/// keeps a running account of measured hardware time.
///
/// # Example
///
/// ```
/// use mpt_fpga::{Accelerator, FpgaBackend, SaConfig};
/// use mpt_arith::{GemmBackend, QGemmConfig};
/// use mpt_tensor::Tensor;
///
/// let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(4, 4, 2)?, 328.4));
/// let a = Tensor::ones(vec![3, 5]);
/// let b = Tensor::ones(vec![5, 2]);
/// backend.gemm(&a, &b, &QGemmConfig::fp8_fp12_sr())?;
/// assert_eq!(backend.gemm_count(), 1);
/// assert!(backend.elapsed_s() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FpgaBackend {
    accelerator: Accelerator,
    elapsed_s: RefCell<f64>,
    gemms: Cell<usize>,
}

impl FpgaBackend {
    /// Wraps an accelerator.
    pub fn new(accelerator: Accelerator) -> Self {
        FpgaBackend {
            accelerator,
            elapsed_s: RefCell::new(0.0),
            gemms: Cell::new(0),
        }
    }

    /// The wrapped accelerator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// Total measured hardware time accumulated so far, seconds.
    pub fn elapsed_s(&self) -> f64 {
        *self.elapsed_s.borrow()
    }

    /// Number of GEMM launches so far.
    pub fn gemm_count(&self) -> usize {
        self.gemms.get()
    }

    /// Resets the accumulated counters.
    pub fn reset(&self) {
        *self.elapsed_s.borrow_mut() = 0.0;
        self.gemms.set(0);
    }
}

impl GemmBackend for FpgaBackend {
    fn gemm(&self, a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError> {
        let mut span =
            mpt_arith::gemm_span("gemm:fpga", a, b, cfg, self.accelerator.config().c() as u64);
        let (out, latency) = self.accelerator.execute(a, b, cfg)?;
        *self.elapsed_s.borrow_mut() += latency.total_s;
        self.gemms.set(self.gemms.get() + 1);
        if span.is_active() {
            span.field(mpt_telemetry::SpanField::F64("hw_total_s", latency.total_s))
                .field(mpt_telemetry::SpanField::U64(
                    "hw_cycles",
                    latency.core_cycles,
                ));
            // Per-GEMM perf-model calibration: the analytic L_total
            // (Section IV-A) against the cycle-accurate simulation,
            // at the operand width the simulator itself accounts.
            if let (&[n, k], &[_, m]) = (a.shape(), b.shape()) {
                let bits = cfg.quant_a.format().bit_width();
                let predicted = crate::perf::estimate_gemm(
                    mpt_arith::GemmShape::new(n, k, m),
                    self.accelerator.config(),
                    self.accelerator.freq_mhz(),
                    bits,
                    bits,
                );
                mpt_telemetry::record_calibration(mpt_telemetry::CalibrationRecord {
                    context: "fpga_gemm".into(),
                    label: format!("{n}x{k}x{m}@{}", self.accelerator.config()),
                    predicted_s: predicted.total_s,
                    measured_s: latency.total_s,
                });
            }
        }
        Ok(out)
    }

    fn label(&self) -> String {
        format!(
            "fpga{}@{:.1}MHz",
            self.accelerator.config(),
            self.accelerator.freq_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SaConfig;
    use mpt_arith::{qgemm, CpuBackend};

    #[test]
    fn matches_cpu_backend_bitwise() {
        let a = Tensor::from_fn(vec![9, 13], |i| ((i * 29 % 31) as f32 - 15.0) * 0.04);
        let b = Tensor::from_fn(vec![13, 6], |i| ((i * 23 % 29) as f32 - 14.0) * 0.05);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(8);
        let fpga = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 4, 3).unwrap(), 197.7));
        let cpu = CpuBackend::new();
        assert_eq!(
            fpga.gemm(&a, &b, &cfg).unwrap(),
            cpu.gemm(&a, &b, &cfg).unwrap()
        );
        assert_eq!(
            fpga.gemm(&a, &b, &cfg).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
    }

    #[test]
    fn accounts_time_and_launches() {
        let a = Tensor::ones(vec![4, 4]);
        let b = Tensor::ones(vec![4, 4]);
        let cfg = QGemmConfig::fp8_fp12_sr();
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(2, 2, 1).unwrap(), 320.1));
        for _ in 0..3 {
            backend.gemm(&a, &b, &cfg).unwrap();
        }
        assert_eq!(backend.gemm_count(), 3);
        assert!(backend.elapsed_s() > 0.0);
        backend.reset();
        assert_eq!(backend.gemm_count(), 0);
        assert_eq!(backend.elapsed_s(), 0.0);
    }

    #[test]
    fn label_names_configuration() {
        let backend = FpgaBackend::new(Accelerator::new(SaConfig::new(8, 8, 4).unwrap(), 298.0));
        assert_eq!(backend.label(), "fpga<8,8,4>@298.0MHz");
    }
}
