//! # mpt-fpga — the MPTorch-FPGA accelerator model
//!
//! A software model of the paper's FPGA GEMM accelerator (Section IV):
//! `C` one-dimensional systolic-array cores (de Fine Licht et al.
//! architecture) of `N` processing elements × `M` MAC units each, fed
//! through 512-bit HBM ports, driven over PCIe.
//!
//! Three layers of fidelity:
//!
//! * **Functional** ([`sim`]) — executes a GEMM through the tiled,
//!   partitioned systolic schedule using the *same* bit-accurate MAC
//!   as CPU emulation ([`mpt_arith::mac_step`]), so results are
//!   bitwise identical to `mpt_arith::qgemm` (the paper's bit-level
//!   accuracy claim, verified by integration tests).
//! * **Analytic** ([`perf`]) — the paper's performance model: the
//!   three padding stages, `L_MAC`, `L_write`, `L_data`, `L_total`.
//! * **"Measured"** ([`sim::Accelerator::execute`]) — cycle counting
//!   over the schedule plus the non-idealities the paper reports
//!   (PCIe capped at 80% of peak, per-tile pipeline fill), so
//!   measured latency lands slightly above the estimate with the
//!   optimum preserved (Fig. 7).
//!
//! The synthesis results of Table III/IV are embedded as the static
//! configuration database ([`synthesis::SynthesisDb`]) exactly as the
//! paper pre-generates static bitstream configurations offline.
//!
//! ## Example
//!
//! ```
//! use mpt_fpga::{SaConfig, perf::estimate_gemm};
//! use mpt_arith::GemmShape;
//!
//! let cfg = SaConfig::new(8, 8, 4)?;
//! let lat = estimate_gemm(GemmShape::new(128, 784, 100), cfg, 298.0, 8, 8);
//! assert!(lat.total_s > 0.0);
//! # Ok::<(), mpt_fpga::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod config;
pub mod hbm;
pub mod mapping;
pub mod padding;
pub mod perf;
pub mod pipeline;
pub mod resilient;
pub mod sim;
pub mod synthesis;

pub use backend::FpgaBackend;
pub use cache::{CacheStats, OperandCache, DEFAULT_CACHE_BUDGET};
pub use config::{ConfigError, SaConfig, HBM_PORT_BITS, MAX_CORES, PCIE_GBPS};
pub use hbm::{HbmError, HbmImage};
pub use mapping::{best_mapping, GemmMapping, Partition};
pub use padding::PaddedGemm;
pub use perf::{
    estimate_gemm, estimate_gemm_stages, estimate_workload, estimate_workload_pipelined, Latency,
    StageLatency,
};
pub use pipeline::{PipelineClock, PipelinedExecutor, StageTimes};
pub use resilient::{emit_fallback_event, emit_fault_event, resilient_execute};
pub use sim::{Accelerator, MeasuredLatency};
pub use synthesis::{SynthPoint, SynthesisDb};
