//! The paper's three-stage padding pipeline (Section IV-A).
//!
//! Stage 1 pads the partitioned dimension to split evenly across the
//! `C` cores; stage 2 pads `k` and `m` to the HBM memory tile
//! `T_mem = 512/bits`; stage 3 pads the per-core compute dimensions to
//! the compute tiles `T_PE = N` (rows) and `T_MAC = N·M` (columns).
//! Stages 1–2 run on the host, stage 3 on the FPGA fabric during data
//! loading.

use crate::config::SaConfig;
use mpt_arith::GemmShape;

/// The fully padded dimensions of one GEMM on a given configuration,
/// assuming `A` is the partitioned input (rows split across cores).
///
/// Field names follow the paper: `n_core` rows per core after stage 1,
/// `k_mem`/`m_mem` after stage 2, `n_comp`/`m_comp` after stage 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddedGemm {
    /// Original (logical) shape.
    pub shape: GemmShape,
    /// Rows of `A` handled by each core (stage 1).
    pub n_core: usize,
    /// Reduction dimension padded to the memory tile (stage 2).
    pub k_mem: usize,
    /// `B` columns padded to the memory tile (stage 2).
    pub m_mem: usize,
    /// Per-core rows padded to `T_PE` (stage 3).
    pub n_comp: usize,
    /// Columns padded to `T_MAC` (stage 3).
    pub m_comp: usize,
}

/// Rounds `x` up to a multiple of `to` (minimum one tile).
#[inline]
pub(crate) fn pad_up(x: usize, to: usize) -> usize {
    debug_assert!(to > 0);
    x.max(1).div_ceil(to) * to
}

impl PaddedGemm {
    /// Applies the three padding stages to `shape` on `cfg` with
    /// `bits`-wide operands.
    pub fn new(shape: GemmShape, cfg: SaConfig, bits: u32) -> Self {
        let t_mem = SaConfig::t_mem(bits);
        // Stage 1: split A's rows across cores.
        let n_core = shape.n.max(1).div_ceil(cfg.c());
        // Stage 2: HBM packing of k and m.
        let k_mem = pad_up(shape.k, t_mem);
        let m_mem = pad_up(shape.m, t_mem);
        // Stage 3: compute tiles.
        let n_comp = pad_up(n_core, cfg.t_pe());
        let m_comp = pad_up(m_mem, cfg.t_mac());
        PaddedGemm {
            shape,
            n_core,
            k_mem,
            m_mem,
            n_comp,
            m_comp,
        }
    }

    /// MAC operations actually executed per core (including padding
    /// waste): `n_comp · m_comp · k_mem`.
    pub fn core_macs(&self) -> usize {
        self.n_comp * self.m_comp * self.k_mem
    }

    /// Padding inflation factor: executed MACs (all cores) over the
    /// logical `n·k·m`.
    pub fn inflation(&self, cores: usize) -> f64 {
        (self.core_macs() * cores) as f64 / self.shape.macs().max(1) as f64
    }

    /// Total data elements crossing PCIe, per the paper's `S_data`:
    /// partitioned input + shared input + output.
    pub fn pcie_elements(&self, cores: usize) -> usize {
        cores * self.n_core * self.k_mem      // first input matrix
            + self.k_mem * self.m_mem         // second input matrix
            + cores * self.n_core * self.m_mem // output matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize, c: usize) -> SaConfig {
        SaConfig::new(n, m, c).expect("valid")
    }

    #[test]
    fn pad_up_basics() {
        assert_eq!(pad_up(1, 8), 8);
        assert_eq!(pad_up(8, 8), 8);
        assert_eq!(pad_up(9, 8), 16);
        assert_eq!(pad_up(0, 8), 8); // at least one tile
    }

    #[test]
    fn stage1_splits_rows_evenly() {
        let p = PaddedGemm::new(GemmShape::new(100, 64, 64), cfg(8, 8, 4), 8);
        assert_eq!(p.n_core, 25);
    }

    #[test]
    fn stage2_pads_to_hbm_tile() {
        // 8-bit elements: memory tile 64.
        let p = PaddedGemm::new(GemmShape::new(8, 25, 10), cfg(8, 8, 1), 8);
        assert_eq!(p.k_mem, 64);
        assert_eq!(p.m_mem, 64);
        // 32-bit elements: memory tile 16.
        let p32 = PaddedGemm::new(GemmShape::new(8, 25, 10), cfg(8, 8, 1), 32);
        assert_eq!(p32.k_mem, 32);
        assert_eq!(p32.m_mem, 16);
    }

    #[test]
    fn stage3_pads_to_compute_tiles() {
        let p = PaddedGemm::new(GemmShape::new(100, 64, 65), cfg(8, 8, 4), 8);
        assert_eq!(p.n_comp, 32); // 25 -> 32 (T_PE = 8)
        assert_eq!(p.m_comp, 128); // m_mem = 128 -> already multiple of 64
        assert_eq!(p.m_comp % cfg(8, 8, 4).t_mac(), 0);
    }

    #[test]
    fn aligned_shapes_pad_nothing_extra() {
        let p = PaddedGemm::new(GemmShape::new(256, 128, 128), cfg(8, 8, 4), 8);
        assert_eq!(p.n_core, 64);
        assert_eq!(p.n_comp, 64);
        assert_eq!(p.k_mem, 128);
        assert_eq!(p.m_comp, 128);
        assert!((p.inflation(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inflation_counts_padding_waste() {
        // Tiny GEMM on a big array: almost all MACs are padding.
        let p = PaddedGemm::new(GemmShape::new(1, 1, 1), cfg(8, 8, 1), 8);
        assert_eq!(p.core_macs(), 8 * 64 * 64);
        assert!(p.inflation(1) > 1000.0);
    }

    #[test]
    fn pcie_elements_matches_paper_formula() {
        let shape = GemmShape::new(100, 64, 65);
        let c = 4;
        let p = PaddedGemm::new(shape, cfg(8, 8, c), 8);
        let expect = c * p.n_core * p.k_mem + p.k_mem * p.m_mem + c * p.n_core * p.m_mem;
        assert_eq!(p.pcie_elements(c), expect);
    }
}
