//! The analytic performance model (paper Section IV-A).
//!
//! For a GEMM padded to `(n_comp, k_mem, m_comp)` on a core of `N×M`
//! MACs at frequency `F`:
//!
//! ```text
//! L_MAC   = n_comp · m_comp · k_mem / (N · M · F)
//! L_write = n_comp · m_comp / (T_out · F),   T_out = M
//! L_core  = L_MAC + L_write
//! L_data  = S_data / B_PCIe
//! L_total = L_core + L_data
//! ```
//!
//! Reads from HBM overlap with compute, so only result write-back and
//! the PCIe transfer add to the MAC time.

use crate::config::{SaConfig, PCIE_GBPS};
use crate::padding::PaddedGemm;
use mpt_arith::GemmShape;

/// Latency breakdown of one GEMM on the accelerator, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latency {
    /// MAC computation time.
    pub mac_s: f64,
    /// Result write-back time.
    pub write_s: f64,
    /// Host↔HBM transfer time over PCIe.
    pub data_s: f64,
    /// `L_total = (mac + write) + data`.
    pub total_s: f64,
}

impl Latency {
    /// Core-only time (`L_MAC + L_write`).
    pub fn core_s(&self) -> f64 {
        self.mac_s + self.write_s
    }
}

/// Estimates the latency of one GEMM (with `A` partitioned across the
/// cores) on `cfg` at `freq_mhz`, with `in_bits`-wide operands and
/// `out_bits`-wide results.
pub fn estimate_gemm(
    shape: GemmShape,
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> Latency {
    let padded = PaddedGemm::new(shape, cfg, in_bits);
    estimate_padded(&padded, cfg, freq_mhz, in_bits, out_bits)
}

/// Estimates latency from an explicit padded shape (used by the
/// mapping search to avoid re-padding).
pub fn estimate_padded(
    padded: &PaddedGemm,
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> Latency {
    let f = freq_mhz * 1.0e6;
    let mac_s = padded.core_macs() as f64 / (cfg.macs_per_core() as f64 * f);
    let write_s = (padded.n_comp * padded.m_comp) as f64 / (cfg.m() as f64 * f);
    // PCIe bytes: inputs at the operand width, result at out_bits.
    let in_bytes = (cfg.c() * padded.n_core * padded.k_mem + padded.k_mem * padded.m_mem) as f64
        * in_bits as f64
        / 8.0;
    let out_bytes = (cfg.c() * padded.n_core * padded.m_mem) as f64 * out_bits as f64 / 8.0;
    let data_s = (in_bytes + out_bytes) / (PCIE_GBPS * 1.0e9);
    Latency {
        mac_s,
        write_s,
        data_s,
        total_s: mac_s + write_s + data_s,
    }
}

/// The analytic model's per-launch stage decomposition, used by the
/// overlap-aware (pipelined) latency accounting: input transfer,
/// core compute, result transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageLatency {
    /// Host→HBM input transfer (partitioned + shared operand bytes).
    pub in_s: f64,
    /// Core time (`L_MAC + L_write`).
    pub core_s: f64,
    /// Result transfer back to the host.
    pub out_s: f64,
}

impl StageLatency {
    /// Un-overlapped latency: the eager `L_total` (stage sum).
    pub fn eager_s(&self) -> f64 {
        self.in_s + self.core_s + self.out_s
    }

    /// The bottleneck stage: the marginal cost of this launch in a
    /// full pipeline.
    pub fn bottleneck_s(&self) -> f64 {
        self.in_s.max(self.core_s).max(self.out_s)
    }
}

/// Splits [`estimate_gemm`]'s latency into pipeline stages.
pub fn estimate_gemm_stages(
    shape: GemmShape,
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> StageLatency {
    let padded = PaddedGemm::new(shape, cfg, in_bits);
    estimate_padded_stages(&padded, cfg, freq_mhz, in_bits, out_bits)
}

/// Splits [`estimate_padded`]'s latency into pipeline stages. The
/// stage sum equals the eager `L_total` exactly (`in_s + out_s =
/// L_data`, `core_s = L_MAC + L_write`).
pub fn estimate_padded_stages(
    padded: &PaddedGemm,
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> StageLatency {
    let l = estimate_padded(padded, cfg, freq_mhz, in_bits, out_bits);
    let in_bytes = (cfg.c() * padded.n_core * padded.k_mem + padded.k_mem * padded.m_mem) as f64
        * in_bits as f64
        / 8.0;
    let out_bytes = (cfg.c() * padded.n_core * padded.m_mem) as f64 * out_bits as f64 / 8.0;
    let bw = PCIE_GBPS * 1.0e9;
    StageLatency {
        in_s: in_bytes / bw,
        core_s: l.core_s(),
        out_s: out_bytes / bw,
    }
}

/// Overlap-aware iteration estimate: the workload's GEMMs stream
/// through a three-stage pipeline (input transfer → compute → result
/// transfer), each with its best mapping, so stage *s* of launch
/// *i+1* runs behind stage *s+1* of launch *i*.
///
/// The exact schedule is the recurrence
/// `done[i][s] = max(done[i][s−1], done[i−1][s]) + t[i][s]`; its
/// closed form when one stage dominates every launch is the paper
/// model's intuition "pipelined `L_total` = `fill + Σᵢ maxₛ t[i][s]`"
/// — a max over stage bottlenecks instead of the eager sum. Always
/// ≤ [`estimate_workload`] and ≥ the bottleneck-sum lower bound.
pub fn estimate_workload_pipelined(
    workload: &[GemmShape],
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> f64 {
    let mut stage_done = [0.0f64; 3];
    for &s in workload {
        let mapping = crate::mapping::best_mapping(s, cfg, freq_mhz, in_bits, out_bits);
        let st = estimate_gemm_stages(mapping.effective_shape(), cfg, freq_mhz, in_bits, out_bits);
        let t = [st.in_s, st.core_s, st.out_s];
        let mut done = stage_done;
        done[0] = stage_done[0] + t[0];
        for stage in 1..3 {
            done[stage] = done[stage - 1].max(stage_done[stage]) + t[stage];
        }
        stage_done = done;
    }
    stage_done[2]
}

/// Estimates the total latency of a training iteration: the sum over
/// all of the workload's (sequential) GEMMs, each with its best
/// transpose/partition mapping (paper Section IV-B).
pub fn estimate_workload(
    workload: &[GemmShape],
    cfg: SaConfig,
    freq_mhz: f64,
    in_bits: u32,
    out_bits: u32,
) -> f64 {
    workload
        .iter()
        .map(|&s| {
            crate::mapping::best_mapping(s, cfg, freq_mhz, in_bits, out_bits)
                .latency
                .total_s
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize, c: usize) -> SaConfig {
        SaConfig::new(n, m, c).expect("valid")
    }

    #[test]
    fn mac_latency_formula() {
        // Fully aligned GEMM: no padding, hand-checkable numbers.
        let shape = GemmShape::new(64, 64, 64);
        let l = estimate_gemm(shape, cfg(8, 8, 1), 100.0, 8, 8);
        // n_comp*m_comp*k_mem / (64 MACs * 100 MHz)
        let expect = (64.0 * 64.0 * 64.0) / (64.0 * 100.0e6);
        assert!((l.mac_s - expect).abs() < 1e-15, "{} vs {expect}", l.mac_s);
        // write: 64*64 / (8 * 100 MHz)
        let expect_w = (64.0 * 64.0) / (8.0 * 100.0e6);
        assert!((l.write_s - expect_w).abs() < 1e-15);
        assert!((l.total_s - (l.mac_s + l.write_s + l.data_s)).abs() < 1e-18);
    }

    #[test]
    fn more_cores_reduce_core_time() {
        let shape = GemmShape::new(1024, 512, 512);
        let l1 = estimate_gemm(shape, cfg(8, 8, 1), 200.0, 8, 8);
        let l4 = estimate_gemm(shape, cfg(8, 8, 4), 200.0, 8, 8);
        assert!(
            l4.core_s() < l1.core_s() / 3.0,
            "{} vs {}",
            l4.core_s(),
            l1.core_s()
        );
    }

    #[test]
    fn higher_frequency_scales_core_time() {
        let shape = GemmShape::new(512, 512, 512);
        let slow = estimate_gemm(shape, cfg(8, 8, 2), 100.0, 8, 8);
        let fast = estimate_gemm(shape, cfg(8, 8, 2), 200.0, 8, 8);
        assert!((slow.core_s() / fast.core_s() - 2.0).abs() < 1e-9);
        // PCIe time is frequency-independent.
        assert_eq!(slow.data_s, fast.data_s);
    }

    #[test]
    fn small_gemm_dominated_by_padding() {
        // A 1x1x1 GEMM on a 64x32 array still pays a full tile.
        let l = estimate_gemm(GemmShape::new(1, 1, 1), cfg(64, 32, 1), 150.0, 8, 8);
        let work = estimate_gemm(GemmShape::new(64, 512, 2048), cfg(64, 32, 1), 150.0, 8, 8);
        // The tiny GEMM costs the same MAC time as one full tile pass.
        assert!(l.mac_s > 0.0);
        assert!(work.mac_s > l.mac_s);
    }

    #[test]
    fn wider_outputs_cost_more_pcie() {
        let shape = GemmShape::new(256, 256, 256);
        let narrow = estimate_gemm(shape, cfg(8, 8, 2), 200.0, 8, 8);
        let wide = estimate_gemm(shape, cfg(8, 8, 2), 200.0, 8, 32);
        assert!(wide.data_s > narrow.data_s);
        assert_eq!(wide.mac_s, narrow.mac_s);
    }

    #[test]
    fn stages_sum_to_eager_total() {
        let shape = GemmShape::new(100, 64, 65);
        let sa = cfg(8, 8, 4);
        let l = estimate_gemm(shape, sa, 298.0, 8, 32);
        let st = estimate_gemm_stages(shape, sa, 298.0, 8, 32);
        assert!((st.eager_s() - l.total_s).abs() < 1e-15);
        assert!((st.in_s + st.out_s - l.data_s).abs() < 1e-15);
        assert!((st.core_s - l.core_s()).abs() < 1e-15);
    }

    #[test]
    fn pipelined_workload_between_bounds() {
        let w = vec![
            GemmShape::new(256, 784, 128),
            GemmShape::new(256, 128, 100),
            GemmShape::new(128, 256, 784),
            GemmShape::new(256, 784, 128),
        ];
        let sa = cfg(8, 8, 4);
        let eager = estimate_workload(&w, sa, 298.0, 8, 8);
        let pipelined = estimate_workload_pipelined(&w, sa, 298.0, 8, 8);
        assert!(
            pipelined < eager,
            "overlap must win: {pipelined} vs {eager}"
        );
        // Lower bound: no schedule beats the sum of bottleneck stages.
        let bottleneck_sum: f64 = w
            .iter()
            .map(|&s| {
                let m = crate::mapping::best_mapping(s, sa, 298.0, 8, 8);
                estimate_gemm_stages(m.effective_shape(), sa, 298.0, 8, 8).bottleneck_s()
            })
            .sum();
        assert!(pipelined >= bottleneck_sum);
    }

    #[test]
    fn single_gemm_pipeline_equals_eager() {
        let w = [GemmShape::new(64, 64, 64)];
        let sa = cfg(8, 8, 1);
        let eager = estimate_workload(&w, sa, 100.0, 8, 8);
        let pipelined = estimate_workload_pipelined(&w, sa, 100.0, 8, 8);
        assert!((eager - pipelined).abs() < 1e-15);
    }

    #[test]
    fn workload_sums_gemms() {
        let w = vec![GemmShape::new(64, 64, 64); 3];
        let one = estimate_workload(&w[..1], cfg(8, 8, 1), 100.0, 8, 8);
        let three = estimate_workload(&w, cfg(8, 8, 1), 100.0, 8, 8);
        assert!((three - 3.0 * one).abs() < 1e-12);
    }
}
