//! GEMM problem shapes.
//!
//! A [`GemmShape`] describes one `(n × k) · (k × m)` multiplication.
//! Training workloads (sequences of GEMMs extracted from a model's
//! forward/backward passes) are `Vec<GemmShape>`; the FPGA performance
//! model consumes them to estimate iteration latency (paper
//! Section IV-A).

use std::fmt;

/// The dimensions of one GEMM: `A ∈ R^{n×k}`, `B ∈ R^{k×m}`,
/// `C ∈ R^{n×m}` (the paper's notation).
///
/// # Example
///
/// ```
/// use mpt_arith::GemmShape;
///
/// let s = GemmShape::new(128, 784, 100);
/// assert_eq!(s.flops(), 2 * 128 * 784 * 100);
/// assert_eq!(s.transposed(), GemmShape::new(100, 784, 128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and of the output.
    pub n: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Columns of `B` and of the output.
    pub m: usize,
}

impl GemmShape {
    /// Creates a shape from `(n, k, m)`.
    pub fn new(n: usize, k: usize, m: usize) -> Self {
        GemmShape { n, k, m }
    }

    /// Number of multiply-add floating-point operations (2·n·k·m).
    pub fn flops(&self) -> usize {
        2 * self.n * self.k * self.m
    }

    /// Number of MAC operations (n·k·m).
    pub fn macs(&self) -> usize {
        self.n * self.k * self.m
    }

    /// The shape of the transposed problem `Bᵀ·Aᵀ = Cᵀ`: feeding the
    /// accelerator transposed inputs swaps `n` and `m` (the first step
    /// of the paper's mapping optimization, Section IV-B).
    pub fn transposed(&self) -> GemmShape {
        GemmShape {
            n: self.m,
            k: self.k,
            m: self.n,
        }
    }

    /// Total input + output element count (used for PCIe traffic
    /// before padding).
    pub fn elements(&self) -> usize {
        self.n * self.k + self.k * self.m + self.n * self.m
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}x{})x({}x{})", self.n, self.k, self.k, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_macs() {
        let s = GemmShape::new(2, 3, 4);
        assert_eq!(s.macs(), 24);
        assert_eq!(s.flops(), 48);
        assert_eq!(s.elements(), 6 + 12 + 8);
    }

    #[test]
    fn transpose_is_involution() {
        let s = GemmShape::new(5, 7, 9);
        assert_eq!(s.transposed().transposed(), s);
        assert_eq!(s.transposed().flops(), s.flops());
    }

    #[test]
    fn display() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "(1x2)x(2x3)");
    }
}
