//! The configurable multiply-accumulate unit.
//!
//! [`MacConfig`] describes one hardware MAC: the format/rounding of
//! the multiplier output and of the accumulator. [`mac_step`] performs
//! one reduction step with bit-accurate semantics and is shared by the
//! CPU emulation GEMM ([`crate::qgemm()`]) and the systolic-array
//! simulator in `mpt-fpga`, which is what guarantees the two paths
//! agree bit-for-bit.

use mpt_formats::{FixedFormat, FloatFormat, Quantizer, Rounding};
use std::fmt;

/// Stage of a MAC operation, used to separate the stochastic-rounding
/// event streams of the multiplier and the adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacStage {
    /// Rounding of the multiplier output.
    Multiply,
    /// Rounding of the accumulator after an addition.
    Accumulate,
}

impl MacStage {
    fn tag(self) -> u64 {
        match self {
            MacStage::Multiply => 0,
            MacStage::Accumulate => 1,
        }
    }
}

/// Computes the stochastic-rounding event index for reduction step
/// `(i, j, k)` at `stage`.
///
/// The index is a pure function of the *logical* coordinates of the
/// MAC operation (output row, output column, reduction step), not of
/// any loop ordering or padding, so emulation and the systolic
/// schedule draw identical random bits. Supports `i < 2^22` and
/// `j, k < 2^20`.
#[inline]
pub fn sr_event_index(i: usize, j: usize, k: usize, stage: MacStage) -> u64 {
    debug_assert!(i < (1 << 22) && j < (1 << 20) && k < (1 << 20));
    ((i as u64) << 42) | ((j as u64) << 22) | ((k as u64) << 2) | stage.tag()
}

/// Computes the rounding-event index for quantizing *input* element
/// `(row, col)` of a GEMM operand.
///
/// Input quantizers draw from their own seeded streams (distinct from
/// the MAC streams indexed by [`sr_event_index`]), so this packing
/// only has to be collision-free within one operand: row in the high
/// 32 bits, column in the low 32. Every input-quantization site —
/// [`crate::quantize_matrix`], the reference kernel, and the
/// slice-quantization fast path (which indexes `base + j`
/// contiguously along a row) — uses this one helper, so partitioned
/// tiles, padded operands and the FPGA simulator all draw identical
/// bits. Supports `row, col < 2^32`.
#[inline]
pub fn input_event_index(row: usize, col: usize) -> u64 {
    debug_assert!(
        (row as u64) < (1 << 32) && (col as u64) < (1 << 32),
        "input coordinates ({row}, {col}) exceed 32-bit packing"
    );
    ((row as u64) << 32) | col as u64
}

/// Configuration of one MAC unit: multiplier-output quantizer and
/// accumulator quantizer.
///
/// A multiplier with [`Rounding::NoRound`] models a **fused** MAC: the
/// exact product feeds the adder (the paper's `E5M2-NR` multiplier
/// rows in Table II). Any other multiplier rounding models a discrete
/// multiply-then-round unit.
///
/// # Example
///
/// ```
/// use mpt_arith::MacConfig;
///
/// let mac = MacConfig::fp8_fp12_sr();
/// assert_eq!(mac.to_string(), "E5M2-NR x E6M5-SR");
/// assert!(mac.is_fused());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacConfig {
    /// Quantizer applied to each product (`NR` = fused).
    pub mul: Quantizer,
    /// Quantizer applied to the accumulator after each addition.
    pub acc: Quantizer,
}

impl MacConfig {
    /// Creates a MAC from multiplier and accumulator quantizers.
    pub fn new(mul: Quantizer, acc: Quantizer) -> Self {
        MacConfig { mul, acc }
    }

    /// Full-precision baseline: `E8M23-RN × E8M23-RN` (paper Table II
    /// baseline row).
    pub fn fp32() -> Self {
        MacConfig::new(
            Quantizer::float(FloatFormat::e8m23(), Rounding::Nearest),
            Quantizer::float(FloatFormat::e8m23(), Rounding::Nearest),
        )
    }

    /// The paper's headline configuration: fused FP8 multiplier
    /// (`E5M2-NR`) with FP12 stochastic-rounding accumulator
    /// (`E6M5-SR`, 10 random bits). This is the format the FPGA
    /// accelerator of Section V-C implements.
    pub fn fp8_fp12_sr() -> Self {
        MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::NoRound),
            Quantizer::float(FloatFormat::e6m5(), Rounding::stochastic()),
        )
    }

    /// Fused FP8 multiplier with an FP12 accumulator under `rounding`
    /// (the `E6M5-{RZ,RO,RN,SR}` rows of Table II).
    pub fn fp8_fp12(rounding: Rounding) -> Self {
        MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::NoRound),
            Quantizer::float(FloatFormat::e6m5(), rounding),
        )
    }

    /// Fused FP8 multiplier with FP16 `E5M10-RN` accumulator
    /// (Table II's highest-accuracy custom row).
    pub fn fp8_fp16_rn() -> Self {
        MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::NoRound),
            Quantizer::float(FloatFormat::e5m10(), Rounding::Nearest),
        )
    }

    /// Fixed-point MAC: `FXP4.4` multiplier under `rounding` with an
    /// `FXP8.8` round-to-nearest accumulator (Table II's FXP rows).
    pub fn fxp4_4(rounding: Rounding) -> Self {
        MacConfig::new(
            Quantizer::fixed(FixedFormat::fxp4_4(), rounding),
            Quantizer::fixed(FixedFormat::fxp8_8(), Rounding::Nearest),
        )
    }

    /// `true` when the multiplier output feeds the adder unrounded
    /// (an FMA-style fused MAC).
    pub fn is_fused(&self) -> bool {
        matches!(self.mul.rounding(), Rounding::NoRound)
    }

    /// `true` when every stage passes FP32 through unchanged, allowing
    /// kernels to take the fast uncquantized path.
    pub fn is_identity(&self) -> bool {
        self.mul.is_identity() && self.acc.is_identity()
    }

    /// Reseeds the stochastic streams of both stages, deriving
    /// distinct sub-seeds so multiplier and accumulator never share
    /// random bits.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.mul = self.mul.with_seed(seed.wrapping_mul(2).wrapping_add(1));
        self.acc = self.acc.with_seed(seed.wrapping_mul(2).wrapping_add(2));
        self
    }

    /// The wider of the two stage formats, in bits — what the HBM
    /// packing model uses for accumulator traffic.
    pub fn acc_bit_width(&self) -> u32 {
        self.acc.format().bit_width()
    }
}

impl fmt::Display for MacConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x {}", self.mul, self.acc)
    }
}

/// Performs one MAC reduction step with bit-accurate semantics:
/// `round_acc(acc + round_mul(a · b))` at logical coordinates
/// `(i, j, k)`.
///
/// `a` and `b` are assumed already quantized to their operand formats;
/// their product is exact in `f64`. The result is the new accumulator
/// value as an `f32` carrier holding a value representable in the
/// accumulator format.
#[inline]
pub fn mac_step(acc: f32, a: f32, b: f32, mac: &MacConfig, i: usize, j: usize, k: usize) -> f32 {
    let product = a as f64 * b as f64; // exact for low-precision operands
    if product == 0.0 {
        // Adding an exact zero cannot change the accumulator, which is
        // already representable in the accumulator format (inductively:
        // it starts at 0 and every step returns a quantized value), so
        // every rounding mode — including SR — returns it unchanged.
        // This keeps zero-padded tiles and ReLU-sparse operands cheap.
        return acc;
    }
    let product = if mac.is_fused() {
        product
    } else {
        mac.mul
            .quantize(product, sr_event_index(i, j, k, MacStage::Multiply))
    };
    let sum = acc as f64 + product;
    mac.acc
        .quantize(sum, sr_event_index(i, j, k, MacStage::Accumulate)) as f32
}

/// [`mac_step`] with telemetry: identical arithmetic (same quantizer
/// calls, same event indices, bit-identical result — asserted by
/// tests), additionally classifying the multiplier rounding into
/// `mul_tally` and the accumulator rounding into `acc_tally`.
///
/// Kept as a separate function so the untallied [`mac_step`] stays
/// byte-identical to the uninstrumented original; the GEMM loops pick
/// one or the other once per kernel via a `const TALLY` parameter.
#[inline]
#[allow(clippy::too_many_arguments)] // mac_step's signature + two tallies
pub fn mac_step_tallied(
    acc: f32,
    a: f32,
    b: f32,
    mac: &MacConfig,
    i: usize,
    j: usize,
    k: usize,
    mul_tally: &mut mpt_telemetry::QuantTally,
    acc_tally: &mut mpt_telemetry::QuantTally,
) -> f32 {
    let product = a as f64 * b as f64;
    if product == 0.0 {
        // Zero-adds bypass both quantizers (see mac_step); nothing to
        // tally.
        return acc;
    }
    let product = if mac.is_fused() {
        product
    } else {
        let rounded = mac
            .mul
            .quantize(product, sr_event_index(i, j, k, MacStage::Multiply));
        mul_tally.record(product, rounded);
        rounded
    };
    let sum = acc as f64 + product;
    let rounded = mac
        .acc
        .quantize(sum, sr_event_index(i, j, k, MacStage::Accumulate));
    acc_tally.record(sum, rounded);
    rounded as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_indices_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    for stage in [MacStage::Multiply, MacStage::Accumulate] {
                        assert!(seen.insert(sr_event_index(i, j, k, stage)));
                    }
                }
            }
        }
    }

    #[test]
    fn fp32_mac_matches_native() {
        let mac = MacConfig::fp32();
        let mut acc = 0.0f32;
        let mut native = 0.0f32;
        for k in 0..32 {
            let a = (k as f32 * 0.37).sin();
            let b = (k as f32 * 0.91).cos();
            acc = mac_step(acc, a, b, &mac, 0, 0, k);
            native += a * b;
        }
        assert!((acc - native).abs() < 1e-5);
    }

    #[test]
    fn fused_mac_skips_product_rounding() {
        // With a fused FP8 multiplier and a wide accumulator, the
        // product 1.25 * 1.25 = 1.5625 (not E5M2-representable) must
        // survive into the accumulator.
        let mac = MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::NoRound),
            Quantizer::float(FloatFormat::e8m23(), Rounding::Nearest),
        );
        let acc = mac_step(0.0, 1.25, 1.25, &mac, 0, 0, 0);
        assert_eq!(acc, 1.5625);
    }

    #[test]
    fn unfused_mac_rounds_product() {
        let mac = MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::Nearest),
            Quantizer::float(FloatFormat::e8m23(), Rounding::Nearest),
        );
        // 1.5625 rounds to 1.5 in E5M2 (RN, candidates 1.5 and 1.75).
        let acc = mac_step(0.0, 1.25, 1.25, &mac, 0, 0, 0);
        assert_eq!(acc, 1.5);
    }

    #[test]
    fn accumulator_stagnation_with_rn() {
        // The classic low-precision pathology the paper's SR rows
        // address: adding a value below half a ULP of a large
        // accumulator is lost entirely under RN.
        let mac = MacConfig::fp8_fp12(Rounding::Nearest);
        let acc = 64.0f32; // E6M5 ULP at 64 is 2.0
        let got = mac_step(acc, 0.5, 0.5, &mac, 0, 0, 0); // +0.25 < ULP/2
        assert_eq!(got, 64.0, "RN swallowed the small addend");
    }

    #[test]
    fn stochastic_escapes_stagnation_in_expectation() {
        let mac = MacConfig::fp8_fp12_sr();
        let acc = 64.0f32;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|k| mac_step(acc, 0.5, 0.5, &mac, 0, 0, k) as f64)
            .sum::<f64>()
            / n as f64;
        // E[result] = 64.25: SR rounds up to 66 with prob 0.125.
        assert!((mean - 64.25).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn seeding_changes_stochastic_results() {
        let a = MacConfig::fp8_fp12_sr().with_seed(1);
        let b = MacConfig::fp8_fp12_sr().with_seed(2);
        let ra: Vec<f32> = (0..64)
            .map(|k| mac_step(10.0, 0.3, 0.7, &a, 0, 0, k))
            .collect();
        let rb: Vec<f32> = (0..64)
            .map(|k| mac_step(10.0, 0.3, 0.7, &b, 0, 0, k))
            .collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn fixed_point_mac_saturates() {
        let mac = MacConfig::fxp4_4(Rounding::Nearest);
        // FXP8.8 accumulator max is ~127.996; repeated large products
        // saturate rather than wrap.
        let mut acc = 0.0f32;
        for k in 0..100 {
            acc = mac_step(acc, 7.9, 7.9, &mac, 0, 0, k);
        }
        assert!(acc <= FixedFormat::fxp8_8().max_value() as f32 + 1e-6);
        assert!(acc > 120.0);
    }

    #[test]
    fn display_and_predicates() {
        assert_eq!(MacConfig::fp32().to_string(), "E8M23-RN x E8M23-RN");
        assert!(MacConfig::fp32().is_identity());
        assert!(!MacConfig::fp8_fp12_sr().is_identity());
        assert!(MacConfig::fp8_fp12_sr().is_fused());
        assert!(!MacConfig::fxp4_4(Rounding::Nearest).is_fused());
    }

    #[test]
    fn tallied_step_is_bit_identical_to_mac_step() {
        // Every configuration family, specials included: the tallied
        // mirror must never diverge from the oracle.
        let configs = [
            MacConfig::fp8_fp12_sr().with_seed(5),
            MacConfig::fp8_fp12(Rounding::Nearest),
            MacConfig::fxp4_4(Rounding::TowardZero),
            MacConfig::new(
                Quantizer::float(FloatFormat::e5m2(), Rounding::Nearest),
                Quantizer::float(FloatFormat::e6m5(), Rounding::ToOdd),
            ),
        ];
        let specials = [0.0f32, -0.0, 1.0, -7.3, 1.0e30, f32::INFINITY, f32::NAN];
        for mac in &configs {
            let mut mul_t = mac.mul.telemetry_tally();
            let mut acc_t = mac.acc.telemetry_tally();
            for (k, &a) in specials.iter().enumerate() {
                for (j, &b) in specials.iter().enumerate() {
                    let acc = (j as f32 - 3.0) * 1.7;
                    let plain = mac_step(acc, a, b, mac, 1, j, k);
                    let tallied = mac_step_tallied(acc, a, b, mac, 1, j, k, &mut mul_t, &mut acc_t);
                    assert_eq!(
                        plain.to_bits(),
                        tallied.to_bits(),
                        "{mac} diverged on a={a} b={b} acc={acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn tallied_step_counts_stages() {
        let mac = MacConfig::fxp4_4(Rounding::Nearest); // unfused: both stages round
        let mut mul_t = mac.mul.telemetry_tally();
        let mut acc_t = mac.acc.telemetry_tally();
        mac_step_tallied(0.0, 1.3, 1.7, &mac, 0, 0, 0, &mut mul_t, &mut acc_t);
        assert!(!mul_t.is_empty(), "unfused multiplier stage must tally");
        assert!(!acc_t.is_empty());

        let fused = MacConfig::fp8_fp12_sr();
        let mut mul_f = fused.mul.telemetry_tally();
        let mut acc_f = fused.acc.telemetry_tally();
        mac_step_tallied(0.0, 1.25, 1.25, &fused, 0, 0, 0, &mut mul_f, &mut acc_f);
        assert!(mul_f.is_empty(), "fused multiplier never rounds");
        assert!(!acc_f.is_empty());

        // Zero products bypass both quantizers.
        let mut mul_z = fused.mul.telemetry_tally();
        let mut acc_z = fused.acc.telemetry_tally();
        mac_step_tallied(3.0, 0.0, 5.0, &fused, 0, 0, 0, &mut mul_z, &mut acc_z);
        assert!(mul_z.is_empty() && acc_z.is_empty());
    }

    #[test]
    fn acc_bit_width_reports_accumulator() {
        assert_eq!(MacConfig::fp8_fp12_sr().acc_bit_width(), 12);
        assert_eq!(MacConfig::fxp4_4(Rounding::Nearest).acc_bit_width(), 16);
    }
}
