//! The custom-precision GEMM emulation kernel.
//!
//! This mirrors the paper's Figure 2 computation flow for one GEMM:
//! quantize the inputs, run every MAC in the configured formats, and
//! cast the result back to FP32.

use crate::kernels::gemm_into_tier;
use crate::mac::{input_event_index, mac_step, MacConfig};
use mpt_formats::{Quantizer, SimdTier};
use mpt_tensor::{ShapeError, Tensor};
use std::fmt;

/// Full configuration of a custom-precision GEMM: input quantizers
/// for both operands plus the MAC unit configuration.
///
/// # Example
///
/// ```
/// use mpt_arith::QGemmConfig;
///
/// let cfg = QGemmConfig::fp8_fp12_sr().with_seed(42);
/// assert!(cfg.to_string().contains("E6M5-SR"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QGemmConfig {
    /// Quantizer applied to every element of `A` before compute.
    pub quant_a: Quantizer,
    /// Quantizer applied to every element of `B` before compute.
    pub quant_b: Quantizer,
    /// The MAC unit configuration.
    pub mac: MacConfig,
}

impl QGemmConfig {
    /// Creates a config from operand quantizers and a MAC.
    pub fn new(quant_a: Quantizer, quant_b: Quantizer, mac: MacConfig) -> Self {
        QGemmConfig {
            quant_a,
            quant_b,
            mac,
        }
    }

    /// Builds a config whose operand quantizers match the MAC's
    /// multiplier *format* with round-to-nearest input quantization —
    /// the convention used throughout the paper's experiments (inputs
    /// are quantized to the multiplier's operand format before the
    /// GEMM).
    pub fn for_mac(mac: MacConfig) -> Self {
        let fmt = mac.mul.format();
        let input = Quantizer::new(fmt, mpt_formats::Rounding::Nearest);
        QGemmConfig {
            quant_a: input,
            quant_b: input,
            mac,
        }
    }

    /// Full-precision FP32 GEMM (the emulation baseline).
    pub fn fp32() -> Self {
        QGemmConfig::for_mac(MacConfig::fp32())
    }

    /// The paper's headline configuration: FP8 (`E5M2`) operands,
    /// fused multiplier, FP12 `E6M5-SR` accumulator.
    pub fn fp8_fp12_sr() -> Self {
        QGemmConfig::for_mac(MacConfig::fp8_fp12_sr())
    }

    /// Reseeds every stochastic stream in the configuration with
    /// sub-seeds derived from `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.quant_a = self.quant_a.with_seed(seed.wrapping_mul(4).wrapping_add(1));
        self.quant_b = self.quant_b.with_seed(seed.wrapping_mul(4).wrapping_add(2));
        self.mac = self.mac.with_seed(seed);
        self
    }

    /// `true` if the whole pipeline passes FP32 through unchanged.
    pub fn is_identity(&self) -> bool {
        self.quant_a.is_identity() && self.quant_b.is_identity() && self.mac.is_identity()
    }
}

impl fmt::Display for QGemmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A:{} B:{} MAC:{}", self.quant_a, self.quant_b, self.mac)
    }
}

/// Computes `A · B` under `cfg`: `(n, k) × (k, m) → (n, m)`.
///
/// Inputs are quantized element-wise (rounding events indexed by flat
/// position), then each output element is reduced over `k` in
/// ascending order through [`mac_step`]. The result tensor carries
/// FP32 values each exactly representable in the accumulator format.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank-2 or the inner
/// dimensions differ.
///
/// # Example
///
/// ```
/// use mpt_arith::{qgemm, QGemmConfig};
/// use mpt_tensor::Tensor;
///
/// let a = Tensor::from_fn(vec![2, 3], |i| i as f32 * 0.25);
/// let b = Tensor::from_fn(vec![3, 2], |i| 1.0 - i as f32 * 0.125);
/// // The paper's headline pipeline: FP8 operands, FP12-SR MAC.
/// let c = qgemm(&a, &b, &QGemmConfig::fp8_fp12_sr())?;
/// assert_eq!(c.shape(), &[2, 2]);
/// # Ok::<(), mpt_tensor::ShapeError>(())
/// ```
pub fn qgemm(a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError> {
    qgemm_with_offsets(a, b, cfg, 0, 0)
}

/// [`qgemm`] with logical coordinate offsets.
///
/// The systolic-array simulator partitions `A` row-wise across cores;
/// `row_offset`/`col_offset` let a core compute its tile while
/// indexing stochastic-rounding events by *global* output coordinates,
/// preserving bit-equality with the unpartitioned emulation.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`qgemm`].
pub fn qgemm_with_offsets(
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    row_offset: usize,
    col_offset: usize,
) -> Result<Tensor, ShapeError> {
    qgemm_with_tier(
        a,
        b,
        cfg,
        row_offset,
        col_offset,
        mpt_formats::simd::active_tier(),
    )
}

/// [`qgemm_with_offsets`] with an explicit SIMD tier instead of the
/// ambient `MPT_SIMD` selection.
///
/// Every tier is bit-identical (the lane kernels replay the scalar
/// operation and SR event sequence exactly), so this exists purely for
/// in-process tier comparison: differential tests pin
/// `off == portable == avx2` and benches assert bit-equality alongside
/// their throughput measurements without re-spawning the process per
/// `MPT_SIMD` value.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`qgemm`].
pub fn qgemm_with_tier(
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    row_offset: usize,
    col_offset: usize,
    tier: SimdTier,
) -> Result<Tensor, ShapeError> {
    let (n, k) = a.as_matrix()?;
    let (k2, m) = b.as_matrix()?;
    if k != k2 {
        return Err(ShapeError::Mismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "qgemm",
        });
    }
    if cfg.is_identity() {
        // Fast path: plain FP32 GEMM in the same reduction order.
        return a.matmul(b);
    }

    let aq = quantize_matrix_tier(a, &cfg.quant_a, row_offset, 0, tier);
    let bq = quantize_matrix_tier(b, &cfg.quant_b, 0, col_offset, tier);

    let mut out = vec![0.0f32; n * m];
    gemm_into_tier(
        &mut out,
        aq.data(),
        bq.data(),
        n,
        k,
        m,
        &cfg.mac,
        row_offset,
        col_offset,
        tier,
    );
    Tensor::from_vec(vec![n, m], out)
}

/// The scalar reference kernel: per-element input quantization through
/// [`Quantizer::quantize_f32`] and a plain `i/j/k` loop of
/// [`mac_step`] calls — no slice fast paths, no kernel selection, no
/// cache blocking.
///
/// This is the **oracle** the optimized [`qgemm_with_offsets`] path is
/// property-tested against bit-for-bit; it is not used by the training
/// stack. Kept deliberately simple so its correctness is auditable by
/// inspection against the paper's MAC pipeline.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`qgemm`].
pub fn qgemm_reference(
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    row_offset: usize,
    col_offset: usize,
) -> Result<Tensor, ShapeError> {
    let (n, k) = a.as_matrix()?;
    let (k2, m) = b.as_matrix()?;
    if k != k2 {
        return Err(ShapeError::Mismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "qgemm_reference",
        });
    }
    if cfg.is_identity() {
        return a.matmul(b);
    }

    let mut ad = a.data().to_vec();
    if !cfg.quant_a.is_identity() {
        for i in 0..n {
            for kk in 0..k {
                ad[i * k + kk] = cfg
                    .quant_a
                    .quantize_f32(ad[i * k + kk], input_event_index(i + row_offset, kk));
            }
        }
    }
    let mut bd = b.data().to_vec();
    if !cfg.quant_b.is_identity() {
        for kk in 0..k {
            for j in 0..m {
                bd[kk * m + j] = cfg
                    .quant_b
                    .quantize_f32(bd[kk * m + j], input_event_index(kk, j + col_offset));
            }
        }
    }

    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let gi = i + row_offset;
        for j in 0..m {
            let gj = j + col_offset;
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = mac_step(acc, ad[i * k + kk], bd[kk * m + j], &cfg.mac, gi, gj, kk);
            }
            out[i * m + j] = acc;
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

/// Quantizes a matrix operand, indexing each element's rounding event
/// by its *global* `(row, col)` coordinate (packed by
/// [`input_event_index`]) so partitioned tiles match the monolithic
/// computation bit-for-bit.
///
/// Rows are quantized through the slice fast path
/// ([`Quantizer::quantize_slice_f32`]); a row's events are the
/// contiguous indices `input_event_index(row, col_offset) + j`, which
/// equal `input_event_index(row, col_offset + j)` because columns
/// occupy the low 32 bits (bounds are debug-asserted).
///
/// Exposed for the systolic-array simulator in `mpt-fpga`, which must
/// quantize operands identically to the emulation kernel.
///
/// # Panics
///
/// Panics if `t` is not a matrix.
pub fn quantize_matrix(t: &Tensor, q: &Quantizer, row_offset: usize, col_offset: usize) -> Tensor {
    quantize_matrix_tier(
        t,
        q,
        row_offset,
        col_offset,
        mpt_formats::simd::active_tier(),
    )
}

/// [`quantize_matrix`] with an explicit SIMD tier (bit-identical to
/// every other tier; see [`qgemm_with_tier`]).
pub fn quantize_matrix_tier(
    t: &Tensor,
    q: &Quantizer,
    row_offset: usize,
    col_offset: usize,
    tier: SimdTier,
) -> Tensor {
    if q.is_identity() {
        return t.clone();
    }
    let (r, c) = t.as_matrix().expect("operand is a matrix");
    debug_assert!(
        col_offset as u64 + c as u64 <= 1 << 32,
        "column range [{col_offset}, {col_offset}+{c}) exceeds 32-bit event packing"
    );
    let mut out = t.clone();
    let data = out.data_mut();
    for i in 0..r {
        let base = input_event_index(i + row_offset, col_offset);
        q.quantize_slice_f32_tier(&mut data[i * c..(i + 1) * c], base, tier);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_formats::{FloatFormat, Rounding};

    #[test]
    fn fp32_config_matches_reference_matmul() {
        let a = Tensor::from_fn(vec![7, 5], |i| ((i * 13) % 9) as f32 * 0.37 - 1.2);
        let b = Tensor::from_fn(vec![5, 6], |i| ((i * 7) % 11) as f32 * 0.21 - 0.9);
        let q = qgemm(&a, &b, &QGemmConfig::fp32()).unwrap();
        let r = a.matmul(&b).unwrap();
        assert_eq!(q, r, "identity config must take the exact same path");
    }

    #[test]
    fn shape_validation() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 5]);
        assert!(qgemm(&a, &b, &QGemmConfig::fp32()).is_err());
    }

    #[test]
    fn quantized_inputs_are_used() {
        // 1.1 quantizes to 1.0 in E5M2 under RN (1.1 is closer to 1.0
        // than 1.25); the product must therefore be exactly 1.0.
        let cfg = QGemmConfig::for_mac(MacConfig::new(
            Quantizer::float(FloatFormat::e5m2(), Rounding::NoRound),
            Quantizer::identity(),
        ));
        let a = Tensor::from_vec(vec![1, 1], vec![1.1]).unwrap();
        let b = Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap();
        assert_eq!(qgemm(&a, &b, &cfg).unwrap().item(), 1.0);
    }

    #[test]
    fn accumulator_format_bounds_output() {
        // With an E6M5 accumulator, outputs are E6M5-representable.
        let cfg = QGemmConfig::for_mac(MacConfig::fp8_fp12(Rounding::Nearest));
        let a = Tensor::from_fn(vec![4, 16], |i| ((i % 7) as f32 - 3.0) * 0.25);
        let b = Tensor::from_fn(vec![16, 4], |i| ((i % 5) as f32 - 2.0) * 0.25);
        let c = qgemm(&a, &b, &cfg).unwrap();
        let e6m5 = FloatFormat::e6m5();
        for &v in c.data() {
            assert!(e6m5.is_representable(v as f64), "{v} not E6M5");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(99);
        let a = Tensor::from_fn(vec![6, 9], |i| ((i * 31 % 23) as f32 - 11.0) * 0.13);
        let b = Tensor::from_fn(vec![9, 5], |i| ((i * 17 % 19) as f32 - 9.0) * 0.11);
        let c1 = qgemm(&a, &b, &cfg).unwrap();
        let c2 = qgemm(&a, &b, &cfg).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tensor::from_fn(vec![6, 9], |i| ((i * 31 % 23) as f32 - 11.0) * 0.13);
        let b = Tensor::from_fn(vec![9, 5], |i| ((i * 17 % 19) as f32 - 9.0) * 0.11);
        let c1 = qgemm(&a, &b, &QGemmConfig::fp8_fp12_sr().with_seed(1)).unwrap();
        let c2 = qgemm(&a, &b, &QGemmConfig::fp8_fp12_sr().with_seed(2)).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn row_partition_with_offsets_matches_monolithic() {
        // Split A into two row blocks, compute each with the proper
        // row offset, and compare against the full GEMM — the property
        // the FPGA multicore partitioning depends on.
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(7);
        let a = Tensor::from_fn(vec![8, 10], |i| ((i * 29 % 31) as f32 - 15.0) * 0.07);
        let b = Tensor::from_fn(vec![10, 6], |i| ((i * 23 % 27) as f32 - 13.0) * 0.09);
        let full = qgemm(&a, &b, &cfg).unwrap();
        let top = qgemm_with_offsets(&a.slice_rows(0, 4).unwrap(), &b, &cfg, 0, 0).unwrap();
        let bot = qgemm_with_offsets(&a.slice_rows(4, 8).unwrap(), &b, &cfg, 4, 0).unwrap();
        let stitched = Tensor::concat_rows(&[top, bot]).unwrap();
        assert_eq!(full, stitched);
    }

    #[test]
    fn zero_padding_k_preserves_result() {
        // Appending zero columns to A and zero rows to B (the HBM
        // packing padding) must not change any output bit, including
        // under stochastic rounding.
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(3);
        let a = Tensor::from_fn(vec![5, 7], |i| ((i * 11 % 13) as f32 - 6.0) * 0.2);
        let b = Tensor::from_fn(vec![7, 4], |i| ((i * 19 % 17) as f32 - 8.0) * 0.1);
        let plain = qgemm(&a, &b, &cfg).unwrap();
        let ap = a.pad_to(5, 12).unwrap();
        let bp = b.pad_to(12, 4).unwrap();
        let padded = qgemm(&ap, &bp, &cfg).unwrap();
        assert_eq!(plain, padded, "k-padding changed bits");
    }

    #[test]
    fn zero_padding_nm_preserves_cropped_result() {
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(3);
        let a = Tensor::from_fn(vec![5, 7], |i| ((i * 11 % 13) as f32 - 6.0) * 0.2);
        let b = Tensor::from_fn(vec![7, 4], |i| ((i * 19 % 17) as f32 - 8.0) * 0.1);
        let plain = qgemm(&a, &b, &cfg).unwrap();
        let ap = a.pad_to(8, 7).unwrap();
        let bp = b.pad_to(7, 6).unwrap();
        let padded = qgemm(&ap, &bp, &cfg).unwrap().crop_to(5, 4).unwrap();
        assert_eq!(plain, padded, "n/m-padding changed bits");
    }

    #[test]
    fn dispatch_counter_records_tier() {
        // The `kernel.tier.*` dispatch counter ticks once per GEMM
        // when telemetry is on. Pin it through the Off tier, which
        // ambient-tier GEMMs from concurrently running tests never
        // touch (`MPT_SIMD` is unset here, so ambient != off only on
        // hosts with a vector tier; the >= guard keeps this sound
        // either way).
        let was_enabled = mpt_telemetry::enabled();
        mpt_telemetry::enable();
        let before = mpt_telemetry::counter("kernel.tier.off").get();
        let a = Tensor::from_fn(vec![3, 4], |i| i as f32 * 0.5 - 2.0);
        let b = Tensor::from_fn(vec![4, 3], |i| 1.0 - i as f32 * 0.25);
        qgemm_with_tier(&a, &b, &QGemmConfig::fp8_fp12_sr(), 0, 0, SimdTier::Off).unwrap();
        let after = mpt_telemetry::counter("kernel.tier.off").get();
        if !was_enabled {
            mpt_telemetry::disable();
        }
        assert!(after > before, "dispatch counter did not tick");
    }

    #[test]
    fn display_shows_all_stages() {
        let s = QGemmConfig::fp8_fp12_sr().to_string();
        assert!(s.contains("A:E5M2-RN"), "{s}");
        assert!(s.contains("MAC:E5M2-NR x E6M5-SR"), "{s}");
    }
}
