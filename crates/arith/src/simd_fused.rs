//! Lane-parallel fused-MAC GEMM kernels (the `MPT_SIMD` tiers).
//!
//! These are drop-in replacements for the scalar `gemm_fused` inner
//! loop in [`crate::kernels`]: same `i / j-tile / k / j` traversal,
//! same ascending-`k` reduction per output element, same
//! [`sr_event_index`] event stream — only the innermost `j` loop is
//! restructured into 4-wide `f64` lane blocks. Because IEEE-754
//! multiplies/adds are fully specified and the lane quantizers in
//! `mpt-formats` replay the scalar kernel's exact operation sequence
//! per lane, results are **bit-identical** to the scalar kernel (and
//! therefore to `qgemm_reference`) for every input, including NaN/inf
//! payloads, zero products, and saturating sums:
//!
//! * products and running sums are computed per lane with no
//!   reassociation — lane `j` sees exactly the scalar sequence
//!   `out[j] + a[kk]·b[kk][j]` at each step;
//! * zero products (`product == 0.0`) leave the output lane untouched,
//!   exactly like the scalar `continue`;
//! * lanes whose sum leaves the provable fast regime (non-finite,
//!   target-subnormal, carrier-subnormal) are recomputed through the
//!   scalar quantizer from the same `f64` sum;
//! * SR event indices are computed per lane with the *same*
//!   [`sr_event_index`] packing (no incremental shortcuts that could
//!   diverge on field overflow).
//!
//! The telemetry tallies (`TALLY = true`) record the identical
//! `(sum, quantized)` pairs the scalar kernel records, skipping zero
//! products, so instrumented runs stay tier-independent too.

use crate::mac::{sr_event_index, MacStage};
use mpt_formats::fast::mode;
use mpt_formats::{FloatFastF64, LanePlanF64};
use mpt_telemetry::QuantTally;

use crate::kernels::{gemm_fused, J_TILE};

/// Lane width of the portable blocks (matches the AVX2 register
/// width: 4 × `f64`).
const L: usize = 4;

/// Portable lane-block fused kernel: fixed-width arrays in safe Rust,
/// shaped for the autovectorizer. Falls back to the scalar kernel if
/// the accumulator has no lane plan (`ts <= 0`, i.e. a format at
/// least as fine as `f64` — not reachable with the paper's formats).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_fused_portable<const MODE: u8, const TALLY: bool>(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    acc: &FloatFastF64,
    row_offset: usize,
    col_offset: usize,
    b_all_finite: bool,
    tally: &mut QuantTally,
) {
    let Some(plan) = acc.lane_plan() else {
        return gemm_fused::<MODE, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
        );
    };
    for i in 0..n {
        let gi = i + row_offset;
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + J_TILE).min(m);
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 && b_all_finite {
                    continue;
                }
                let av = av as f64;
                let brow = &bd[kk * m..kk * m + m];
                let mut j = j0;
                while j + L <= j1 {
                    let mut prods = [0f64; L];
                    let mut sums = [0f64; L];
                    let mut idxs = [0u64; L];
                    let mut any_nonzero = false;
                    for l in 0..L {
                        prods[l] = av * brow[j + l] as f64;
                        sums[l] = orow[j + l] as f64 + prods[l];
                        idxs[l] = sr_event_index(gi, j + l + col_offset, kk, MacStage::Accumulate);
                        any_nonzero |= prods[l] != 0.0;
                    }
                    if any_nonzero {
                        let mut q = sums;
                        acc.quantize_block_indexed::<MODE, L>(&plan, &mut q, &idxs);
                        for l in 0..L {
                            // Zero products leave the lane untouched
                            // (and unrecorded), like the scalar skip.
                            if prods[l] == 0.0 {
                                continue;
                            }
                            if TALLY {
                                tally.record(sums[l], q[l]);
                            }
                            orow[j + l] = q[l] as f32;
                        }
                    }
                    j += L;
                }
                while j < j1 {
                    let product = av * brow[j] as f64;
                    if product != 0.0 {
                        let sum = orow[j] as f64 + product;
                        let idx = sr_event_index(gi, j + col_offset, kk, MacStage::Accumulate);
                        let q = acc.quantize::<MODE>(sum, idx);
                        if TALLY {
                            tally.record(sum, q);
                        }
                        orow[j] = q as f32;
                    }
                    j += 1;
                }
            }
            j0 = j1;
        }
    }
}

/// The AVX2 fused kernel (x86_64 only): explicit intrinsics for the
/// 4-lane widen → multiply → add → quantize pipeline, sharing the
/// `f64` lane quantizer with `mpt-formats`.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    use super::*;
    use mpt_formats::simd_avx2::QuantVecF64;
    use mpt_formats::sr::hash;

    /// Collapses a 4×`f64` compare mask to a 4×`f32` mask (low dword
    /// of each 64-bit lane, which is all-ones/all-zero).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn narrow_mask_pd(m: __m256d) -> __m128 {
        let mi = _mm256_castpd_si256(m);
        let t = _mm256_permute4x64_epi64::<0x08>(_mm256_shuffle_epi32::<0x88>(mi));
        _mm_castsi128_ps(_mm256_castsi256_si128(t))
    }

    /// AVX2 fused kernel entry: re-checks CPU support defensively
    /// (dispatch already did) and falls back to the portable tier,
    /// or to the scalar kernel when the accumulator has no lane plan.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_fused_avx2<const MODE: u8, const TALLY: bool>(
        out: &mut [f32],
        ad: &[f32],
        bd: &[f32],
        n: usize,
        k: usize,
        m: usize,
        acc: &FloatFastF64,
        row_offset: usize,
        col_offset: usize,
        b_all_finite: bool,
        tally: &mut QuantTally,
    ) {
        if !mpt_formats::simd::avx2_supported() {
            return gemm_fused_portable::<MODE, TALLY>(
                out,
                ad,
                bd,
                n,
                k,
                m,
                acc,
                row_offset,
                col_offset,
                b_all_finite,
                tally,
            );
        }
        let Some(plan) = acc.lane_plan() else {
            return gemm_fused::<MODE, TALLY>(
                out,
                ad,
                bd,
                n,
                k,
                m,
                acc,
                row_offset,
                col_offset,
                b_all_finite,
                tally,
            );
        };
        // SAFETY: AVX2 availability checked at runtime just above.
        unsafe {
            inner::<MODE, TALLY>(
                out,
                ad,
                bd,
                n,
                k,
                m,
                acc,
                &plan,
                row_offset,
                col_offset,
                b_all_finite,
                tally,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn inner<const MODE: u8, const TALLY: bool>(
        out: &mut [f32],
        ad: &[f32],
        bd: &[f32],
        n: usize,
        k: usize,
        m: usize,
        acc: &FloatFastF64,
        plan: &LanePlanF64,
        row_offset: usize,
        col_offset: usize,
        b_all_finite: bool,
        tally: &mut QuantTally,
    ) {
        let qv = QuantVecF64::new(plan);
        let zero_pd = _mm256_setzero_pd();
        for i in 0..n {
            let gi = i + row_offset;
            let arow = &ad[i * k..(i + 1) * k];
            let orow = &mut out[i * m..(i + 1) * m];
            let mut j0 = 0;
            while j0 < m {
                let j1 = (j0 + J_TILE).min(m);
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 && b_all_finite {
                        continue;
                    }
                    let av = av as f64;
                    let av_v = _mm256_set1_pd(av);
                    let brow = &bd[kk * m..kk * m + m];
                    let mut j = j0;
                    while j + 4 <= j1 {
                        // Widen 4 B lanes and the 4 output lanes; the
                        // vector multiply/add are IEEE-identical to
                        // the scalar `av * b as f64` / `o + product`.
                        let b4 = _mm256_cvtps_pd(_mm_loadu_ps(brow.as_ptr().add(j)));
                        let prod = _mm256_mul_pd(av_v, b4);
                        let pz = _mm256_cmp_pd::<_CMP_EQ_OQ>(prod, zero_pd);
                        let pz_bits = _mm256_movemask_pd(pz) as u32;
                        if pz_bits == 0xF {
                            // All four products are exactly zero: the
                            // scalar kernel skips all four lanes.
                            j += 4;
                            continue;
                        }
                        let o4_32 = _mm_loadu_ps(orow.as_ptr().add(j));
                        let sum = _mm256_add_pd(_mm256_cvtps_pd(o4_32), prod);
                        // SR hash inputs per lane, from the exact
                        // `sr_event_index` packing (no incremental
                        // shortcut — safe against field overflow).
                        let h = if MODE == mode::SR {
                            let hi = |jj: usize| {
                                (plan.seed
                                    ^ sr_event_index(gi, jj + col_offset, kk, MacStage::Accumulate)
                                        .wrapping_mul(hash::INDEX_MUL))
                                    as i64
                            };
                            _mm256_set_epi64x(hi(j + 3), hi(j + 2), hi(j + 1), hi(j))
                        } else {
                            _mm256_setzero_si256()
                        };
                        let (res, lanes_ok) = qv.quantize4::<MODE>(sum, h);
                        // Lanes needing the scalar path: outside the
                        // fast regime AND not a zero-product skip.
                        let need_scalar = !lanes_ok & 0xF & !pz_bits;
                        // Narrow to f32 (vcvtpd2ps == the scalar `as
                        // f32` cast per lane) and keep old values on
                        // zero-product lanes.
                        let q32 = _mm256_cvtpd_ps(res);
                        let merged = _mm_blendv_ps(q32, o4_32, narrow_mask_pd(pz));
                        _mm_storeu_ps(orow.as_mut_ptr().add(j), merged);
                        if TALLY || need_scalar != 0 {
                            let mut sums = [0f64; 4];
                            _mm256_storeu_pd(sums.as_mut_ptr(), sum);
                            let mut qs = [0f64; 4];
                            _mm256_storeu_pd(qs.as_mut_ptr(), res);
                            for l in 0..4 {
                                if pz_bits & (1 << l) != 0 {
                                    continue;
                                }
                                let q = if need_scalar & (1 << l) != 0 {
                                    let idx = sr_event_index(
                                        gi,
                                        j + l + col_offset,
                                        kk,
                                        MacStage::Accumulate,
                                    );
                                    let q = acc.quantize::<MODE>(sums[l], idx);
                                    orow[j + l] = q as f32;
                                    q
                                } else {
                                    qs[l]
                                };
                                if TALLY {
                                    tally.record(sums[l], q);
                                }
                            }
                        }
                        j += 4;
                    }
                    while j < j1 {
                        let product = av * brow[j] as f64;
                        if product != 0.0 {
                            let sum = orow[j] as f64 + product;
                            let idx = sr_event_index(gi, j + col_offset, kk, MacStage::Accumulate);
                            let q = acc.quantize::<MODE>(sum, idx);
                            if TALLY {
                                tally.record(sum, q);
                            }
                            orow[j] = q as f32;
                        }
                        j += 1;
                    }
                }
                j0 = j1;
            }
        }
    }
}
