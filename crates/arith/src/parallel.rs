//! Multi-threaded custom-precision GEMM.
//!
//! Emulating custom precision on CPUs is the slow path the paper
//! calls out ("training tasks on CPU can be notably slow",
//! Section III); this module parallelizes the emulation kernel over
//! output-row blocks with `std::thread::scope`. Because every rounding
//! event is indexed by logical coordinates (see
//! [`crate::sr_event_index`]), the result is bit-identical to the
//! sequential kernel for any thread count.

use crate::qgemm::{qgemm_with_offsets, QGemmConfig};
use mpt_tensor::{ShapeError, Tensor};

/// Computes `A · B` under `cfg` using up to `threads` worker threads.
///
/// Bit-identical to [`crate::qgemm`] — row blocks are computed with
/// their global row offsets so stochastic rounding draws the same
/// bits.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as
/// [`crate::qgemm`].
pub fn qgemm_parallel(
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    threads: usize,
) -> Result<Tensor, ShapeError> {
    let (n, k) = a.as_matrix()?;
    let (k2, m) = b.as_matrix()?;
    if k != k2 {
        return Err(ShapeError::Mismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "qgemm_parallel",
        });
    }
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n == 0 {
        return qgemm_with_offsets(a, b, cfg, 0, 0);
    }

    let rows_per = n.div_ceil(threads);
    let mut results: Vec<Option<Result<Tensor, ShapeError>>> = Vec::new();
    results.resize_with(threads, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * rows_per;
            let end = ((t + 1) * rows_per).min(n);
            if start >= end {
                continue;
            }
            let block = a.slice_rows(start, end).expect("in range");
            let b_ref = &*b;
            let cfg_ref = &*cfg;
            handles.push((
                t,
                scope.spawn(move || qgemm_with_offsets(&block, b_ref, cfg_ref, start, 0)),
            ));
        }
        for (t, h) in handles {
            results[t] = Some(h.join().expect("worker panicked"));
        }
    });

    let blocks: Result<Vec<Tensor>, ShapeError> = results.into_iter().flatten().collect();
    let blocks = blocks?;
    if blocks.is_empty() {
        return Ok(Tensor::zeros(vec![0, m]));
    }
    Tensor::concat_rows(&blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgemm::qgemm;

    fn operands(n: usize, k: usize, m: usize) -> (Tensor, Tensor) {
        (
            Tensor::from_fn(vec![n, k], |i| ((i * 37 % 41) as f32 - 20.0) * 0.05),
            Tensor::from_fn(vec![k, m], |i| ((i * 43 % 47) as f32 - 23.0) * 0.04),
        )
    }

    #[test]
    fn parallel_matches_sequential_fp32() {
        let (a, b) = operands(33, 17, 9);
        let cfg = QGemmConfig::fp32();
        let seq = qgemm(&a, &b, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            assert_eq!(qgemm_parallel(&a, &b, &cfg, threads).unwrap(), seq);
        }
    }

    #[test]
    fn parallel_matches_sequential_stochastic() {
        // The important case: SR results must not depend on threading.
        let (a, b) = operands(19, 23, 11);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(1234);
        let seq = qgemm(&a, &b, &cfg).unwrap();
        for threads in [2, 4, 7] {
            assert_eq!(
                qgemm_parallel(&a, &b, &cfg, threads).unwrap(),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let (a, b) = operands(3, 5, 4);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(5);
        assert_eq!(
            qgemm_parallel(&a, &b, &cfg, 64).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
    }

    #[test]
    fn empty_matrix() {
        let a = Tensor::zeros(vec![0, 5]);
        let b = Tensor::zeros(vec![5, 4]);
        let c = qgemm_parallel(&a, &b, &QGemmConfig::fp32(), 4).unwrap();
        assert_eq!(c.shape(), &[0, 4]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(vec![4, 5]);
        let b = Tensor::zeros(vec![6, 4]);
        assert!(qgemm_parallel(&a, &b, &QGemmConfig::fp32(), 2).is_err());
    }
}
