//! Multi-threaded custom-precision GEMM on a persistent worker pool.
//!
//! Emulating custom precision on CPUs is the slow path the paper
//! calls out ("training tasks on CPU can be notably slow",
//! Section III). This module parallelizes the emulation kernel over a
//! 2-D grid of output tiles, executed by a process-wide worker pool
//! that is spawned **once** (first use) and reused by every GEMM —
//! training steps issue thousands of GEMMs, and per-call
//! `thread::scope` spawning was measurable overhead at layer sizes.
//!
//! Because every rounding event is indexed by logical coordinates
//! (see [`crate::sr_event_index`]), the result is bit-identical to
//! the sequential kernel for any thread count and any tile shape.
//! Operands are quantized once (with global coordinates) and shared
//! read-only by all tiles, rather than re-quantized per block.

use crate::kernels::gemm_into;
use crate::qgemm::{qgemm_with_offsets, quantize_matrix, QGemmConfig};
use mpt_tensor::{ShapeError, Tensor};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// The machine's available parallelism, resolved once per process
/// (`available_parallelism` is a syscall; GEMM call sites ask for this
/// on every invocation).
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// The process-wide GEMM worker pool: [`default_threads`] detached
/// workers blocking on a shared queue. Workers survive job panics
/// (the panic is contained; the submitting GEMM notices the missing
/// result and re-raises).
struct Pool {
    state: Arc<PoolState>,
    workers: usize,
}

impl Pool {
    fn submit(&self, job: Job) {
        let mut queue = self
            .state
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue.push_back(job);
        drop(queue);
        self.state.available.notify_one();
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = default_threads();
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for w in 0..workers {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("mpt-gemm-{w}"))
                .spawn(move || worker_loop(&state))
                .expect("spawn GEMM worker");
        }
        Pool { state, workers }
    })
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // Contain panics so one bad job doesn't shrink the pool; the
        // job's result channel closes, which the submitter detects.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Picks a `(row_tiles, col_tiles)` grid with `row_tiles·col_tiles <=
/// threads`, maximizing used parallelism — tall/skinny backward-pass
/// shapes (large `n`, small `m`, or vice versa) still fan out across
/// the other dimension.
fn tile_grid(threads: usize, n: usize, m: usize) -> (usize, usize) {
    let t = threads.max(1);
    let mut best = (1, 1);
    for tr in 1..=t.min(n.max(1)) {
        let tc = (t / tr).min(m.max(1)).max(1);
        let better = tr * tc > best.0 * best.1
            // Among grids using the same parallelism, prefer the most
            // square one: its tiles share more of each B column block.
            || (tr * tc == best.0 * best.1
                && tr.abs_diff(tc) < best.0.abs_diff(best.1));
        if better {
            best = (tr, tc);
        }
    }
    best
}

/// Splits `len` into `parts` near-equal contiguous ranges.
fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let per = len.div_ceil(parts.max(1));
    (0..parts)
        .map(|p| (p * per, ((p + 1) * per).min(len)))
        .filter(|(s, e)| s < e)
        .collect()
}

/// Computes `A · B` under `cfg` using up to `threads` concurrent
/// tiles, executed on the persistent worker pool.
///
/// Bit-identical to [`crate::qgemm()`] — tiles are computed with their
/// global row/column offsets so stochastic rounding draws the same
/// bits, and operands are quantized once with global coordinates.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as
/// [`crate::qgemm()`].
pub fn qgemm_parallel(
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    threads: usize,
) -> Result<Tensor, ShapeError> {
    let (n, k) = a.as_matrix()?;
    let (k2, m) = b.as_matrix()?;
    if k != k2 {
        return Err(ShapeError::Mismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "qgemm_parallel",
        });
    }
    let threads = threads.max(1).min(n.max(1));
    // Fast exit: anything that degenerates to sequential execution
    // (one thread, empty output, identity config) runs on the caller
    // thread through the direct kernel — zero pool submissions, zero
    // channel hops, no operand re-packing. The bench suite pins this
    // path to within 1% of calling `qgemm` directly.
    if threads == 1 || n == 0 || m == 0 || cfg.is_identity() {
        return qgemm_with_offsets(a, b, cfg, 0, 0);
    }

    let (tr, tc) = tile_grid(threads, n, m);
    if tr * tc <= 1 {
        // Degenerate one-tile grid (defensive: today `threads` is
        // clamped so this implies `threads == 1`, but the grid policy
        // may evolve) — same caller-thread fast exit.
        return qgemm_with_offsets(a, b, cfg, 0, 0);
    }

    // Quantize once, with global coordinates, shared by every tile —
    // the scoped-thread version re-quantized all of B in every block.
    let aq = Arc::new(quantize_matrix(a, &cfg.quant_a, 0, 0));
    let bq = Arc::new(quantize_matrix(b, &cfg.quant_b, 0, 0));

    let row_ranges = split_ranges(n, tr);
    let col_ranges = split_ranges(m, tc);

    // Each column block of quantized B is packed contiguous once and
    // shared by the whole column of tiles.
    let col_blocks: Vec<Arc<Vec<f32>>> = col_ranges
        .iter()
        .map(|&(c0, c1)| {
            let bd = bq.data();
            let cw = c1 - c0;
            let mut block = Vec::with_capacity(k * cw);
            for kk in 0..k {
                block.extend_from_slice(&bd[kk * m + c0..kk * m + c1]);
            }
            Arc::new(block)
        })
        .collect();

    let (sender, receiver) = mpsc::channel::<(usize, usize, Vec<f32>)>();
    let mac = cfg.mac;
    let tile_ids: Vec<(usize, usize)> = (0..row_ranges.len())
        .flat_map(|ri| (0..col_ranges.len()).map(move |ci| (ri, ci)))
        .collect();
    let run_tile = |ri: usize, ci: usize, aq: &Tensor, bcol: &[f32]| {
        let (r0, r1) = row_ranges[ri];
        let (c0, c1) = col_ranges[ci];
        let rh = r1 - r0;
        let cw = c1 - c0;
        let mut tile = vec![0.0f32; rh * cw];
        gemm_into(
            &mut tile,
            &aq.data()[r0 * k..r1 * k],
            bcol,
            rh,
            k,
            cw,
            &mac,
            r0,
            c0,
        );
        tile
    };
    // All tiles but the last go to the pool; the caller thread
    // computes the last one itself instead of idling on the channel
    // (tiles are independent, so execution placement cannot change
    // bits).
    let (last, pooled) = tile_ids.split_last().expect("grid has >= 2 tiles");
    for &(ri, ci) in pooled {
        let aq = Arc::clone(&aq);
        let bcol = Arc::clone(&col_blocks[ci]);
        let sender = sender.clone();
        let (r0, r1) = row_ranges[ri];
        let (c0, c1) = col_ranges[ci];
        pool().submit(Box::new(move || {
            let rh = r1 - r0;
            let cw = c1 - c0;
            let mut tile = vec![0.0f32; rh * cw];
            gemm_into(
                &mut tile,
                &aq.data()[r0 * k..r1 * k],
                &bcol,
                rh,
                k,
                cw,
                &mac,
                r0,
                c0,
            );
            let _ = sender.send((ri, ci, tile));
        }));
    }
    drop(sender);

    let mut out = vec![0.0f32; n * m];
    let place = |ri: usize, ci: usize, tile: Vec<f32>, out: &mut Vec<f32>| {
        let (r0, r1) = row_ranges[ri];
        let (c0, c1) = col_ranges[ci];
        let cw = c1 - c0;
        for (local_i, gi) in (r0..r1).enumerate() {
            out[gi * m + c0..gi * m + c1].copy_from_slice(&tile[local_i * cw..(local_i + 1) * cw]);
        }
    };
    let (lri, lci) = *last;
    let local = run_tile(lri, lci, &aq, &col_blocks[lci]);
    place(lri, lci, local, &mut out);
    for _ in 0..pooled.len() {
        let (ri, ci, tile) = receiver.recv().expect("GEMM tile worker panicked");
        place(ri, ci, tile, &mut out);
    }
    Tensor::from_vec(vec![n, m], out)
}

/// Number of workers in the persistent pool (spawning it on first
/// call). Exposed for diagnostics and tests.
pub fn pool_workers() -> usize {
    pool().workers
}

/// Runs an arbitrary job on the persistent worker pool (spawning it
/// on first use). The job's panics are contained by the pool's
/// workers; detect failure through whatever channel the job reports
/// on. Used by the pipelined FPGA executor to overlap its emulated
/// compute stage with host-side packing of the next launch.
pub fn pool_execute(job: impl FnOnce() + Send + 'static) {
    pool().submit(Box::new(job));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgemm::qgemm;

    fn operands(n: usize, k: usize, m: usize) -> (Tensor, Tensor) {
        (
            Tensor::from_fn(vec![n, k], |i| ((i * 37 % 41) as f32 - 20.0) * 0.05),
            Tensor::from_fn(vec![k, m], |i| ((i * 43 % 47) as f32 - 23.0) * 0.04),
        )
    }

    #[test]
    fn parallel_matches_sequential_fp32() {
        let (a, b) = operands(33, 17, 9);
        let cfg = QGemmConfig::fp32();
        let seq = qgemm(&a, &b, &cfg).unwrap();
        for threads in [1, 2, 3, 8] {
            assert_eq!(qgemm_parallel(&a, &b, &cfg, threads).unwrap(), seq);
        }
    }

    #[test]
    fn parallel_matches_sequential_stochastic() {
        // The important case: SR results must not depend on threading.
        let (a, b) = operands(19, 23, 11);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(1234);
        let seq = qgemm(&a, &b, &cfg).unwrap();
        for threads in [2, 4, 7] {
            assert_eq!(
                qgemm_parallel(&a, &b, &cfg, threads).unwrap(),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let (a, b) = operands(3, 5, 4);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(5);
        assert_eq!(
            qgemm_parallel(&a, &b, &cfg, 64).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
    }

    #[test]
    fn empty_matrix() {
        let a = Tensor::zeros(vec![0, 5]);
        let b = Tensor::zeros(vec![5, 4]);
        let c = qgemm_parallel(&a, &b, &QGemmConfig::fp32(), 4).unwrap();
        assert_eq!(c.shape(), &[0, 4]);
    }

    #[test]
    fn empty_columns() {
        let a = Tensor::zeros(vec![3, 5]);
        let b = Tensor::zeros(vec![5, 0]);
        let c = qgemm_parallel(&a, &b, &QGemmConfig::fp8_fp12_sr(), 4).unwrap();
        assert_eq!(c.shape(), &[3, 0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(vec![4, 5]);
        let b = Tensor::zeros(vec![6, 4]);
        assert!(qgemm_parallel(&a, &b, &QGemmConfig::fp32(), 2).is_err());
    }

    #[test]
    fn pool_is_persistent_across_calls() {
        let (a, b) = operands(16, 8, 8);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(2);
        let first = qgemm_parallel(&a, &b, &cfg, 4).unwrap();
        let workers = pool_workers();
        for _ in 0..10 {
            assert_eq!(qgemm_parallel(&a, &b, &cfg, 4).unwrap(), first);
        }
        // Same pool instance: the worker count is stable and no
        // per-call spawning happened (the pool is a OnceLock).
        assert_eq!(pool_workers(), workers);
    }

    #[test]
    fn tile_grid_covers_skinny_shapes() {
        // Tall/skinny: parallelism must come from rows.
        assert_eq!(tile_grid(8, 1000, 1), (8, 1));
        // Short/wide: from columns.
        assert_eq!(tile_grid(8, 1, 1000), (1, 8));
        // Balanced shapes use a 2-D grid.
        let (tr, tc) = tile_grid(8, 1000, 1000);
        assert!(tr * tc == 8, "grid ({tr}, {tc})");
        assert!(tr > 1 && tc > 1, "grid ({tr}, {tc}) not 2-D");
    }

    #[test]
    fn split_ranges_partition() {
        assert_eq!(split_ranges(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(split_ranges(2, 4), vec![(0, 1), (1, 2)]);
    }
}
