//! Kernel selection and cache-blocked GEMM inner loops.
//!
//! [`gemm_into`] inspects the MAC configuration **once** per GEMM and
//! dispatches to the best inner loop:
//!
//! | MAC configuration                  | kernel                       |
//! |------------------------------------|------------------------------|
//! | fused (`NR` mul) + float acc       | [`gemm_fused`], monomorphized per rounding mode over [`FloatFastF64`] |
//! | anything else (fixed, block FP, unfused, `NR` acc) | [`gemm_generic`] — the [`mac_step`] oracle, cache-blocked |
//!
//! Both loops are `i / j-tile / k / j` ordered: for each output row, a
//! `J_TILE`-wide chunk of the output and of each `B` row stays hot in
//! L1 while the `k` reduction streams through, and every output
//! element still accumulates over `k` in ascending order — the order
//! the scalar reference uses, so results are bit-identical by
//! construction (each element sees the same sequence of `mac_step`
//! operations with the same event indices).
//!
//! Zero skipping matches [`mac_step`]'s `product == 0` short-circuit
//! exactly: a whole `A`-zero row of work is skipped only when `B` is
//! known finite (otherwise `0 × inf` must still produce the NaN the
//! reference produces).
//!
//! Both kernels carry a `const TALLY: bool` parameter for the
//! telemetry numerics counters: `TALLY = false` monomorphizes to
//! exactly the uninstrumented loop (the tally branches compile out),
//! `TALLY = true` classifies every accumulator (and, for the generic
//! kernel, multiplier) rounding into thread-local tallies flushed
//! once per kernel call. [`gemm_into`] picks the variant with a
//! single `telemetry::enabled()` check per GEMM, so the disabled path
//! costs one relaxed atomic load.

use crate::mac::{mac_step, mac_step_tallied, sr_event_index, MacConfig, MacStage};
use crate::simd_fused::gemm_fused_portable;
use mpt_formats::fast::mode;
use mpt_formats::{FloatFastF64, SimdTier};
use mpt_telemetry::QuantTally;

/// Output/B-row chunk width: 256 f32 = 1 KiB per row chunk, so the
/// output chunk plus the streaming B chunk sit comfortably in L1.
pub(crate) const J_TILE: usize = 256;

/// One kernel choice, resolved once per GEMM from
/// `(NumberFormat family, Rounding)` of the MAC stages.
enum Plan {
    /// Fused multiplier (exact product) with a float-format
    /// accumulator: the hot path for every `E*M*` configuration in the
    /// paper, rounded by the precomputed bit-twiddling kernel.
    Fused(FloatFastF64),
    /// Everything else runs the scalar [`mac_step`] oracle inside the
    /// same cache-blocked loop.
    Generic,
}

fn plan(mac: &MacConfig) -> Plan {
    if mac.is_fused() {
        if let Some(fast) = mac.acc.fast_f64() {
            return Plan::Fused(fast);
        }
    }
    Plan::Generic
}

/// Computes `out += A · B` under `mac` (with `out` starting at zero),
/// quantized operands already in `ad`/`bd`, indexing rounding events
/// by global coordinates `(i + row_offset, j + col_offset, k)`, under
/// the ambient `MPT_SIMD` kernel tier.
///
/// Bit-identical to the scalar reference loop for all configurations,
/// with telemetry enabled or not.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: dims + offsets
pub(crate) fn gemm_into(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    mac: &MacConfig,
    row_offset: usize,
    col_offset: usize,
) {
    gemm_into_tier(
        out,
        ad,
        bd,
        n,
        k,
        m,
        mac,
        row_offset,
        col_offset,
        mpt_formats::simd::active_tier(),
    )
}

/// [`gemm_into`] with an explicit kernel tier (every tier is
/// bit-identical; benches and differential tests compare tiers within
/// one process through [`crate::qgemm::qgemm_with_tier`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_into_tier(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    mac: &MacConfig,
    row_offset: usize,
    col_offset: usize,
    tier: SimdTier,
) {
    debug_assert_eq!(out.len(), n * m);
    debug_assert_eq!(ad.len(), n * k);
    debug_assert_eq!(bd.len(), k * m);
    // `product == 0` skipping can only be hoisted to whole-row
    // granularity when B holds no inf/NaN (0 × inf = NaN must not be
    // skipped). One O(km) scan amortized over O(nkm) work.
    let b_all_finite = bd.iter().all(|v| v.is_finite());
    if mpt_telemetry::enabled() {
        // Dispatch counter: which kernel family/tier ran this GEMM
        // (`kernel.tier.off|portable|avx2` for the fused path,
        // `kernel.tier.generic` for the scalar oracle loop).
        let tier_label = match plan(mac) {
            Plan::Fused(_) => tier.name(),
            Plan::Generic => "generic",
        };
        mpt_telemetry::counter(&format!("kernel.tier.{tier_label}")).incr();
        let mut mul_tally = mac.mul.telemetry_tally();
        let mut acc_tally = mac.acc.telemetry_tally();
        match plan(mac) {
            Plan::Fused(acc) => dispatch_fused::<true>(
                out,
                ad,
                bd,
                n,
                k,
                m,
                &acc,
                row_offset,
                col_offset,
                b_all_finite,
                &mut acc_tally,
                tier,
            ),
            Plan::Generic => gemm_generic::<true>(
                out,
                ad,
                bd,
                n,
                k,
                m,
                mac,
                row_offset,
                col_offset,
                b_all_finite,
                &mut mul_tally,
                &mut acc_tally,
            ),
        }
        // Flush once per kernel call (per worker tile); empty tallies
        // (fused multipliers, identity stages) are free.
        mul_tally.flush(&format!("mul:{}", mac.mul));
        acc_tally.flush(&format!("acc:{}", mac.acc));
        return;
    }
    // Disabled path: TALLY = false monomorphizations; the dummy
    // tallies are never touched.
    let mut dummy = QuantTally::new(f64::INFINITY, false);
    let mut dummy2 = QuantTally::new(f64::INFINITY, false);
    match plan(mac) {
        Plan::Fused(acc) => dispatch_fused::<false>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            &acc,
            row_offset,
            col_offset,
            b_all_finite,
            &mut dummy,
            tier,
        ),
        Plan::Generic => gemm_generic::<false>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            mac,
            row_offset,
            col_offset,
            b_all_finite,
            &mut dummy,
            &mut dummy2,
        ),
    }
}

/// Monomorphizes the fused kernel over the accumulator's rounding
/// mode, then routes to the tier implementation.
#[allow(clippy::too_many_arguments)]
fn dispatch_fused<const TALLY: bool>(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    acc: &FloatFastF64,
    row_offset: usize,
    col_offset: usize,
    b_all_finite: bool,
    tally: &mut QuantTally,
    tier: SimdTier,
) {
    match acc.rounding() {
        mpt_formats::Rounding::Nearest => gemm_fused_tier::<{ mode::RN }, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
            tier,
        ),
        mpt_formats::Rounding::TowardZero => gemm_fused_tier::<{ mode::RZ }, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
            tier,
        ),
        mpt_formats::Rounding::Stochastic { .. } => gemm_fused_tier::<{ mode::SR }, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
            tier,
        ),
        mpt_formats::Rounding::ToOdd => gemm_fused_tier::<{ mode::RO }, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
            tier,
        ),
        // `fast_f64` never yields a kernel for NR.
        mpt_formats::Rounding::NoRound => unreachable!("NR has no fast kernel"),
    }
}

/// Tier selection for one monomorphized fused kernel. On non-x86_64
/// hosts the `Avx2` tier (unreachable through `active_tier`, but
/// expressible through the explicit-tier API) degrades to portable.
#[allow(clippy::too_many_arguments)]
fn gemm_fused_tier<const MODE: u8, const TALLY: bool>(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    acc: &FloatFastF64,
    row_offset: usize,
    col_offset: usize,
    b_all_finite: bool,
    tally: &mut QuantTally,
    tier: SimdTier,
) {
    match tier {
        SimdTier::Off => gemm_fused::<MODE, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
        ),
        SimdTier::Portable => gemm_fused_portable::<MODE, TALLY>(
            out,
            ad,
            bd,
            n,
            k,
            m,
            acc,
            row_offset,
            col_offset,
            b_all_finite,
            tally,
        ),
        SimdTier::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                crate::simd_fused::avx2::gemm_fused_avx2::<MODE, TALLY>(
                    out,
                    ad,
                    bd,
                    n,
                    k,
                    m,
                    acc,
                    row_offset,
                    col_offset,
                    b_all_finite,
                    tally,
                )
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                gemm_fused_portable::<MODE, TALLY>(
                    out,
                    ad,
                    bd,
                    n,
                    k,
                    m,
                    acc,
                    row_offset,
                    col_offset,
                    b_all_finite,
                    tally,
                )
            }
        }
    }
}

/// Fused-MAC float kernel: exact `f64` product and sum, accumulator
/// rounded by the monomorphized [`FloatFastF64`] (event-index hashing
/// fused into the mantissa rounding).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_fused<const MODE: u8, const TALLY: bool>(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    acc: &FloatFastF64,
    row_offset: usize,
    col_offset: usize,
    b_all_finite: bool,
    tally: &mut QuantTally,
) {
    for i in 0..n {
        let gi = i + row_offset;
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + J_TILE).min(m);
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 && b_all_finite {
                    continue;
                }
                let av = av as f64;
                let brow = &bd[kk * m..kk * m + m];
                for j in j0..j1 {
                    let product = av * brow[j] as f64;
                    if product == 0.0 {
                        continue;
                    }
                    let sum = orow[j] as f64 + product;
                    let idx = sr_event_index(gi, j + col_offset, kk, MacStage::Accumulate);
                    let q = acc.quantize::<MODE>(sum, idx);
                    if TALLY {
                        tally.record(sum, q);
                    }
                    orow[j] = q as f32;
                }
            }
            j0 = j1;
        }
    }
}

/// Fallback kernel: the scalar [`mac_step`] oracle inside the same
/// cache-blocked loop (fixed point, block FP, unfused multipliers,
/// `NR` accumulators).
#[allow(clippy::too_many_arguments)]
fn gemm_generic<const TALLY: bool>(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    n: usize,
    k: usize,
    m: usize,
    mac: &MacConfig,
    row_offset: usize,
    col_offset: usize,
    b_all_finite: bool,
    mul_tally: &mut QuantTally,
    acc_tally: &mut QuantTally,
) {
    for i in 0..n {
        let gi = i + row_offset;
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        let mut j0 = 0;
        while j0 < m {
            let j1 = (j0 + J_TILE).min(m);
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 && b_all_finite {
                    continue;
                }
                let brow = &bd[kk * m..kk * m + m];
                for j in j0..j1 {
                    orow[j] = if TALLY {
                        mac_step_tallied(
                            orow[j],
                            av,
                            brow[j],
                            mac,
                            gi,
                            j + col_offset,
                            kk,
                            mul_tally,
                            acc_tally,
                        )
                    } else {
                        mac_step(orow[j], av, brow[j], mac, gi, j + col_offset, kk)
                    };
                }
            }
            j0 = j1;
        }
    }
}
