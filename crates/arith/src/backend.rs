//! Pluggable GEMM execution backends.
//!
//! The paper's layer declaration routes GEMMs to CPU emulation or to
//! the FPGA by a `device` parameter (Fig. 3). [`GemmBackend`] is that
//! seam: the training stack (`mpt-nn`) calls whatever backend its
//! graph was given, and `mpt-fpga`'s accelerator implements the trait
//! — with results guaranteed bit-identical to [`CpuBackend`].

use crate::parallel::{default_threads, qgemm_parallel};
use crate::qgemm::QGemmConfig;
use mpt_tensor::{ShapeError, Tensor};

/// An executor for custom-precision GEMMs.
///
/// Implementations must be *numerically equivalent* to the emulation
/// kernel: for any inputs and configuration, `gemm` returns exactly
/// the same bits as [`crate::qgemm()`]. The accelerator simulator in
/// `mpt-fpga` satisfies this (asserted by integration tests) while
/// additionally accounting its cycle-level latency.
pub trait GemmBackend {
    /// Computes `a · b` under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for non-conforming operands.
    fn gemm(&self, a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError>;

    /// A short label for diagnostics (e.g. `"cpu"`, `"fpga<8,8,4>"`).
    fn label(&self) -> String {
        "backend".into()
    }

    /// Marks a training-step boundary: backends that stage work
    /// across launches (the pipelined FPGA executor's launch queue)
    /// drain it here, so latency accounting never straddles an
    /// optimizer update. The trainer calls this once per batch; the
    /// default is a no-op, so purely eager backends pay nothing.
    fn step_boundary(&self) {}
}

/// The default backend: multi-threaded bit-accurate CPU emulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend {
    threads: Option<usize>,
}

impl CpuBackend {
    /// A backend using all available cores.
    pub fn new() -> Self {
        CpuBackend { threads: None }
    }

    /// A backend with an explicit worker count (results are identical
    /// for any count).
    pub fn with_threads(threads: usize) -> Self {
        CpuBackend {
            threads: Some(threads),
        }
    }
}

impl GemmBackend for CpuBackend {
    fn gemm(&self, a: &Tensor, b: &Tensor, cfg: &QGemmConfig) -> Result<Tensor, ShapeError> {
        let threads = self.threads.unwrap_or_else(default_threads);
        let _span = gemm_span("gemm:cpu", a, b, cfg, threads as u64);
        qgemm_parallel(a, b, cfg, threads)
    }

    fn label(&self) -> String {
        "cpu".into()
    }
}

/// Opens the per-GEMM telemetry span backends use: shape, config,
/// operand+result bytes, and the executor's parallelism. Inert (and
/// nearly free) when telemetry is disabled.
pub fn gemm_span(
    name: &'static str,
    a: &Tensor,
    b: &Tensor,
    cfg: &QGemmConfig,
    threads: u64,
) -> mpt_telemetry::SpanGuard {
    let mut span = mpt_telemetry::span(name);
    if span.is_active() {
        if let (&[n, k], &[k2, m]) = (a.shape(), b.shape()) {
            let _ = k2;
            span.field(mpt_telemetry::SpanField::Str(
                "shape",
                format!("{n}x{k}x{m}"),
            ))
            .add_bytes(((n * k + k * m + n * m) * std::mem::size_of::<f32>()) as u64);
        }
        span.field(mpt_telemetry::SpanField::Str("config", cfg.to_string()))
            .field(mpt_telemetry::SpanField::U64("threads", threads));
    }
    span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgemm::qgemm;

    #[test]
    fn cpu_backend_matches_kernel() {
        let a = Tensor::from_fn(vec![7, 9], |i| ((i * 13 % 17) as f32 - 8.0) * 0.1);
        let b = Tensor::from_fn(vec![9, 5], |i| ((i * 11 % 13) as f32 - 6.0) * 0.1);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(4);
        let backend = CpuBackend::new();
        assert_eq!(
            backend.gemm(&a, &b, &cfg).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
        assert_eq!(backend.label(), "cpu");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = Tensor::from_fn(vec![13, 9], |i| ((i * 13 % 17) as f32 - 8.0) * 0.1);
        let b = Tensor::from_fn(vec![9, 5], |i| ((i * 11 % 13) as f32 - 6.0) * 0.1);
        let cfg = QGemmConfig::fp8_fp12_sr().with_seed(4);
        let one = CpuBackend::with_threads(1).gemm(&a, &b, &cfg).unwrap();
        let many = CpuBackend::with_threads(8).gemm(&a, &b, &cfg).unwrap();
        assert_eq!(one, many);
    }
}
