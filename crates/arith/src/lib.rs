//! # mpt-arith — bit-accurate custom-precision arithmetic kernels
//!
//! This crate implements the compute semantics at the heart of
//! MPTorch-FPGA: GEMM in which the multiplier, the accumulator, and
//! the input quantization each have their own independently
//! configurable number format and rounding mode (paper Section III).
//!
//! The computation for one output element follows the paper's MAC
//! pipeline exactly:
//!
//! 1. Inputs are pre-quantized to the operand format.
//! 2. Each product `a·b` is computed exactly (two low-precision
//!    operands multiply exactly in `f64`), then rounded to the
//!    multiplier output format — unless the multiplier is configured
//!    `NR`, in which case the full-width product feeds the adder
//!    directly (**fused** MAC, as in Archimedes-MPO and the paper's
//!    FP8-multiplier/FP12-adder FMA configuration).
//! 3. The running sum is rounded to the accumulator format after every
//!    addition.
//! 4. The final accumulator is cast back to FP32.
//!
//! Stochastic rounding events are indexed by `(i, j, k, stage)` through
//! a stateless counter-based RNG, so the result of a GEMM is a pure
//! function of `(inputs, config, seed)` — independent of loop order,
//! thread count, or whether the computation runs through the CPU
//! emulation kernel here or the systolic-array simulator in
//! `mpt-fpga`. Integration tests assert that equality bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use mpt_arith::{qgemm, QGemmConfig};
//! use mpt_tensor::Tensor;
//!
//! let cfg = QGemmConfig::fp8_fp12_sr(); // paper's accelerator config
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::eye(2);
//! let c = qgemm(&a, &b, &cfg)?;
//! assert_eq!(c.data(), a.data()); // small integers are FP8-exact
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the AVX2 fused-MAC kernel in
// `simd_fused::avx2` is the one sanctioned `unsafe` island (raw
// intrinsics behind runtime feature detection); any new `unsafe`
// elsewhere is still a hard error.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub(crate) mod kernels;
pub mod mac;
pub mod parallel;
pub mod qgemm;
pub mod shape;
pub(crate) mod simd_fused;

pub use backend::{gemm_span, CpuBackend, GemmBackend};
pub use mac::{input_event_index, mac_step, mac_step_tallied, sr_event_index, MacConfig, MacStage};
pub use parallel::{default_threads, pool_execute, pool_workers, qgemm_parallel};
pub use qgemm::{
    qgemm, qgemm_reference, qgemm_with_offsets, qgemm_with_tier, quantize_matrix,
    quantize_matrix_tier, QGemmConfig,
};
pub use shape::GemmShape;
