//! Cross-path bit-equality at the GEMM level: the dispatched fast
//! kernels behind [`qgemm`] must agree bit for bit with
//! [`qgemm_reference`] — the plain scalar loop over the reference
//! quantizer — for every configuration family, rounding mode, shape,
//! seed and offset, including operands containing zeros, infinities
//! and saturation-range values.

use mpt_arith::{
    qgemm_parallel, qgemm_reference, qgemm_with_offsets, qgemm_with_tier, MacConfig, QGemmConfig,
};
use mpt_formats::{FloatFormat, NumberFormat, Quantizer, Rounding, SimdTier};
use mpt_tensor::Tensor;
use proptest::prelude::*;

/// Every kernel tier testable on this host (`Avx2` falls back to the
/// portable kernel on non-AVX2 CPUs, which must be bit-identical too).
fn all_tiers() -> Vec<SimdTier> {
    let mut tiers = vec![SimdTier::Off, SimdTier::Portable];
    if cfg!(target_arch = "x86_64") {
        tiers.push(SimdTier::Avx2);
    }
    tiers
}

fn modes() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        Just(Rounding::Nearest),
        Just(Rounding::TowardZero),
        Just(Rounding::ToOdd),
        Just(Rounding::NoRound),
        (1u32..=16).prop_map(|b| Rounding::Stochastic { random_bits: b }),
    ]
}

/// The paper's configuration families plus corner variants that route
/// through every kernel in the dispatch table.
fn configs() -> impl Strategy<Value = QGemmConfig> {
    prop_oneof![
        Just(QGemmConfig::fp32()),
        Just(QGemmConfig::fp8_fp12_sr()),
        modes().prop_map(|m| QGemmConfig::for_mac(MacConfig::fp8_fp12(m))),
        Just(QGemmConfig::for_mac(MacConfig::fp8_fp16_rn())),
        modes().prop_map(|m| QGemmConfig::for_mac(MacConfig::fxp4_4(m))),
        // Accumulator variants that stress saturation/subnormal
        // handling inside the fused fast kernel.
        modes().prop_map(|m| {
            let mut cfg = QGemmConfig::for_mac(MacConfig::fp8_fp12(m));
            cfg.mac.acc = Quantizer::new(
                NumberFormat::Float(FloatFormat::e4m3().with_infinities()),
                m,
            );
            cfg
        }),
        modes().prop_map(|m| {
            let mut cfg = QGemmConfig::for_mac(MacConfig::fp8_fp12(m));
            cfg.mac.acc = Quantizer::new(
                NumberFormat::Float(FloatFormat::e6m5().without_subnormals()),
                m,
            );
            cfg
        }),
    ]
}

fn values(scale: f32) -> impl Strategy<Value = f32> {
    prop_oneof![
        (-1.0f32..1.0).prop_map(move |v| v * scale),
        Just(0.0f32),
        Just(-0.0f32),
        // Large magnitudes push the low-precision accumulator into its
        // saturation regime.
        (-1.0f32..1.0).prop_map(move |v| v * scale * 1.0e4),
    ]
}

fn matrix(rows: usize, cols: usize, scale: f32) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(values(scale), rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).expect("shape fits"))
}

fn assert_bitwise_eq(fast: &Tensor, reference: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.shape(), reference.shape());
    for (i, (f, r)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
        prop_assert_eq!(
            f.to_bits(),
            r.to_bits(),
            "element {}: fast {} != reference {}",
            i,
            f,
            r
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dispatched kernels == scalar reference for random shapes,
    /// configurations, seeds and offsets.
    #[test]
    fn qgemm_matches_reference(
        (n, k, m) in (1usize..12, 1usize..14, 1usize..12),
        cfg in configs(),
        seed in 0u64..1 << 20,
        (ro, co) in (0usize..64, 0usize..64),
        abig in matrix(11, 13, 4.0),
        bbig in matrix(13, 11, 4.0),
    ) {
        // Carve the generated operands down to the sampled shape.
        let a = Tensor::from_fn(vec![n, k], |i| abig.data()[i % abig.data().len()]);
        let b = Tensor::from_fn(vec![k, m], |i| bbig.data()[i % bbig.data().len()]);
        let cfg = cfg.with_seed(seed);
        let fast = qgemm_with_offsets(&a, &b, &cfg, ro, co).unwrap();
        let reference = qgemm_reference(&a, &b, &cfg, ro, co).unwrap();
        assert_bitwise_eq(&fast, &reference)?;
    }

    /// The parallel pool path equals the reference too (composition of
    /// both tentpole pieces).
    #[test]
    fn qgemm_parallel_matches_reference(
        cfg in configs(),
        seed in 0u64..1 << 20,
        threads in 1usize..9,
        a in matrix(9, 12, 3.0),
        b in matrix(12, 7, 3.0),
    ) {
        let cfg = cfg.with_seed(seed);
        let fast = qgemm_parallel(&a, &b, &cfg, threads).unwrap();
        let reference = qgemm_reference(&a, &b, &cfg, 0, 0).unwrap();
        assert_bitwise_eq(&fast, &reference)?;
    }

    /// Operands containing non-finite values must flow through the
    /// kernels exactly as through the reference (the row-level zero
    /// skip may only fire when B is all-finite).
    #[test]
    fn non_finite_operands_match_reference(
        cfg in configs(),
        seed in 0u64..1 << 16,
        inf_pos in 0usize..35,
        zero_row in 0usize..5,
        a in matrix(5, 7, 2.0),
        b in matrix(7, 5, 2.0),
    ) {
        let cfg = cfg.with_seed(seed);
        let mut bd = b.data().to_vec();
        let pos = inf_pos % bd.len();
        bd[pos] = f32::INFINITY;
        let b = Tensor::from_vec(vec![7, 5], bd).unwrap();
        let mut ad = a.data().to_vec();
        for v in ad[zero_row * 7..(zero_row + 1) * 7].iter_mut() {
            *v = 0.0; // a whole zero row of A against an inf in B
        }
        let a = Tensor::from_vec(vec![5, 7], ad).unwrap();
        let fast = qgemm_with_offsets(&a, &b, &cfg, 0, 0).unwrap();
        let reference = qgemm_reference(&a, &b, &cfg, 0, 0).unwrap();
        assert_bitwise_eq(&fast, &reference)?;
    }

    /// Every SIMD tier of the dispatched kernel equals the scalar
    /// reference — random shapes (exercising 4-lane MAC tails when
    /// `m % 4 != 0`), every config family and rounding mode, random
    /// SR seeds and offsets.
    #[test]
    fn qgemm_tiers_match_reference(
        (n, k, m) in (1usize..10, 1usize..12, 1usize..14),
        cfg in configs(),
        seed in 0u64..1 << 20,
        (ro, co) in (0usize..64, 0usize..64),
        abig in matrix(9, 11, 4.0),
        bbig in matrix(11, 13, 4.0),
    ) {
        let a = Tensor::from_fn(vec![n, k], |i| abig.data()[i % abig.data().len()]);
        let b = Tensor::from_fn(vec![k, m], |i| bbig.data()[i % bbig.data().len()]);
        let cfg = cfg.with_seed(seed);
        let reference = qgemm_reference(&a, &b, &cfg, ro, co).unwrap();
        for tier in all_tiers() {
            let fast = qgemm_with_tier(&a, &b, &cfg, ro, co, tier).unwrap();
            prop_assert_eq!(
                fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {} != reference", tier.name()
            );
        }
    }

    /// Non-finite and zero-product corner operands agree across tiers
    /// (the vector kernels' zero-product lane blending and
    /// scalar-fallback lanes are the risk here).
    #[test]
    fn tiers_agree_on_special_operands(
        cfg in configs(),
        seed in 0u64..1 << 16,
        special in prop_oneof![
            Just(f32::INFINITY),
            Just(f32::NEG_INFINITY),
            Just(f32::NAN),
            Just(0.0f32),
            Just(-0.0f32),
            Just(f32::from_bits(1)), // subnormal
        ],
        pos in 0usize..91,
        a in matrix(7, 13, 2.0),
        b in matrix(13, 7, 2.0),
    ) {
        let cfg = cfg.with_seed(seed);
        let mut bd = b.data().to_vec();
        let p = pos % bd.len();
        bd[p] = special;
        let b = Tensor::from_vec(vec![13, 7], bd).unwrap();
        let reference = qgemm_with_tier(&a, &b, &cfg, 0, 0, SimdTier::Off).unwrap();
        for tier in [SimdTier::Portable, SimdTier::Avx2] {
            let fast = qgemm_with_tier(&a, &b, &cfg, 0, 0, tier).unwrap();
            prop_assert_eq!(
                fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {} != off tier", tier.name()
            );
        }
    }
}
