//! Property-based tests for the quantized GEMM kernel.

use mpt_arith::{qgemm, qgemm_parallel, MacConfig, QGemmConfig};
use mpt_formats::{FloatFormat, Quantizer, Rounding};
use mpt_tensor::Tensor;
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..10, 1usize..12, 1usize..10)
}

fn tensor_pair(n: usize, k: usize, m: usize, seed: u64) -> (Tensor, Tensor) {
    let a = Tensor::from_fn(vec![n, k], |i| {
        (((i as u64).wrapping_add(seed).wrapping_mul(2654435761) % 64) as f32 - 32.0) * 0.05
    });
    let b = Tensor::from_fn(vec![k, m], |i| {
        (((i as u64).wrapping_add(seed).wrapping_mul(40503) % 64) as f32 - 32.0) * 0.04
    });
    (a, b)
}

fn mac_configs() -> impl Strategy<Value = MacConfig> {
    prop_oneof![
        Just(MacConfig::fp32()),
        Just(MacConfig::fp8_fp12_sr()),
        Just(MacConfig::fp8_fp12(Rounding::Nearest)),
        Just(MacConfig::fp8_fp12(Rounding::TowardZero)),
        Just(MacConfig::fp8_fp12(Rounding::ToOdd)),
        Just(MacConfig::fp8_fp16_rn()),
        Just(MacConfig::fxp4_4(Rounding::Nearest)),
        Just(MacConfig::fxp4_4(Rounding::stochastic())),
    ]
}

proptest! {
    /// qgemm is deterministic for a fixed seed, for every config.
    #[test]
    fn qgemm_deterministic((n, k, m) in dims(), mac in mac_configs(), seed in 0u64..1000) {
        let (a, b) = tensor_pair(n, k, m, seed);
        let cfg = QGemmConfig::for_mac(mac).with_seed(seed);
        prop_assert_eq!(qgemm(&a, &b, &cfg).unwrap(), qgemm(&a, &b, &cfg).unwrap());
    }

    /// Parallel and sequential kernels agree bit-for-bit.
    #[test]
    fn qgemm_parallel_agrees(
        (n, k, m) in dims(),
        mac in mac_configs(),
        seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let (a, b) = tensor_pair(n, k, m, seed);
        let cfg = QGemmConfig::for_mac(mac).with_seed(seed);
        prop_assert_eq!(
            qgemm_parallel(&a, &b, &cfg, threads).unwrap(),
            qgemm(&a, &b, &cfg).unwrap()
        );
    }

    /// Zero-padding the reduction dimension never changes a bit.
    #[test]
    fn qgemm_k_padding_invariant(
        (n, k, m) in dims(),
        mac in mac_configs(),
        seed in 0u64..1000,
        pad in 1usize..16,
    ) {
        let (a, b) = tensor_pair(n, k, m, seed);
        let cfg = QGemmConfig::for_mac(mac).with_seed(seed);
        let plain = qgemm(&a, &b, &cfg).unwrap();
        let ap = a.pad_to(n, k + pad).unwrap();
        let bp = b.pad_to(k + pad, m).unwrap();
        prop_assert_eq!(qgemm(&ap, &bp, &cfg).unwrap(), plain);
    }

    /// Row partitioning with offsets reproduces the monolithic result
    /// for any split point (the multicore partitioning property).
    #[test]
    fn qgemm_row_partition_invariant(
        (n, k, m) in (2usize..10, 1usize..12, 1usize..10),
        mac in mac_configs(),
        seed in 0u64..1000,
        split_frac in 0.1f64..0.9,
    ) {
        use mpt_arith::qgemm_with_offsets;
        let (a, b) = tensor_pair(n, k, m, seed);
        let cfg = QGemmConfig::for_mac(mac).with_seed(seed);
        let full = qgemm(&a, &b, &cfg).unwrap();
        let split = ((n as f64 * split_frac) as usize).clamp(1, n - 1);
        let top = qgemm_with_offsets(&a.slice_rows(0, split).unwrap(), &b, &cfg, 0, 0).unwrap();
        let bot = qgemm_with_offsets(&a.slice_rows(split, n).unwrap(), &b, &cfg, split, 0).unwrap();
        prop_assert_eq!(Tensor::concat_rows(&[top, bot]).unwrap(), full);
    }

    /// With a wide accumulator, the quantized GEMM stays within the
    /// input-quantization error bound of the FP32 reference.
    #[test]
    fn qgemm_error_bounded_by_input_quantization(
        (n, k, m) in dims(),
        seed in 0u64..1000,
    ) {
        let (a, b) = tensor_pair(n, k, m, seed);
        // E5M10 operands (relative error <= 2^-11 each), FP32 MAC.
        let q = Quantizer::float(FloatFormat::e5m10(), Rounding::Nearest);
        let cfg = QGemmConfig::new(q, q, MacConfig::fp32());
        let got = qgemm(&a, &b, &cfg).unwrap();
        let reference = a.matmul(&b).unwrap();
        let scale: f32 = k as f32 * a.abs_max() * b.abs_max();
        for (x, y) in got.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() <= scale * 3.0 * 2f32.powi(-11) + 1e-6,
                "{} vs {}", x, y);
        }
    }

    /// Outputs of a low-precision accumulator GEMM are representable
    /// in the accumulator format (deterministic modes).
    #[test]
    fn qgemm_outputs_live_in_acc_format(
        (n, k, m) in dims(),
        seed in 0u64..1000,
    ) {
        let (a, b) = tensor_pair(n, k, m, seed);
        let cfg = QGemmConfig::for_mac(MacConfig::fp8_fp12(Rounding::Nearest)).with_seed(seed);
        let c = qgemm(&a, &b, &cfg).unwrap();
        let e6m5 = FloatFormat::e6m5();
        for &v in c.data() {
            prop_assert!(e6m5.is_representable(v as f64), "{}", v);
        }
    }

    /// GEMM with the identity on one side reproduces the (quantized)
    /// other operand when formats are wide enough to hold it.
    #[test]
    fn qgemm_identity_neutral(n in 1usize..8, seed in 0u64..1000) {
        let a = Tensor::from_fn(vec![n, n], |i| {
            // E5M2-exact values: multiples of 0.25 in [-2, 2), where
            // the E5M2 ULP is at most 0.25.
            (((i as u64 + seed) * 97 % 16) as f32 - 8.0) * 0.25
        });
        let cfg = QGemmConfig::for_mac(MacConfig::fp8_fp16_rn()).with_seed(seed);
        let c = qgemm(&a, &Tensor::eye(n), &cfg).unwrap();
        prop_assert_eq!(c, a);
    }
}
