//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build container cannot reach a crates.io mirror, so the
//! workspace vendors a small, dependency-free harness with the same
//! surface: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Throughput::Elements`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Reporting is simpler than real criterion: each benchmark prints a
//! single line with the mean wall-clock time per iteration (plus
//! throughput when declared), and — when the `MPT_BENCH_JSON`
//! environment variable names a file — appends one JSON object per
//! benchmark to that file so scripts can collect machine-readable
//! results.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. MACs for a GEMM).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and accumulates timing samples.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher<'_> {
    /// Measures `routine`: warms up, then takes `sample_size` timed
    /// samples, each batching enough iterations to be clock-robust.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, measuring the
        // rough per-iteration cost to size sample batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(1) as u64;
        let target_total = self.config.measurement_time.as_secs_f64().max(1e-3);
        let iters_per_sample =
            ((target_total / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t0.elapsed();
            total_iters += iters_per_sample;
        }
        self.mean_secs = total.as_secs_f64() / total_iters.max(1) as f64;
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    config: Config,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional CLI args act as substring filters (matching the
        // real harness); flags like `--bench` that cargo passes are
        // ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            config: Config::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget split across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let name = self.qualified("", &id.id);
        self.run_one(&name, None, f);
    }

    fn qualified(&self, group: &str, id: &str) -> String {
        if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        }
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            config: &self.config,
            mean_secs: 0.0,
        };
        f(&mut bencher);
        report(name, bencher.mean_secs, throughput);
    }
}

/// A named collection of benchmarks sharing throughput declarations.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group (accepted for API
    /// compatibility; applies to the whole run).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let name = self.criterion.qualified(&self.name, &id.id);
        self.criterion
            .run_one(&name, self.throughput, |b| f(b, input));
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let name = self.criterion.qualified(&self.name, &id.id);
        self.criterion.run_one(&name, self.throughput, f);
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let time = format_secs(mean_secs);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / mean_secs.max(1e-12);
            println!("{name:<48} {time:>12}/iter {:>14.3} Melem/s", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / mean_secs.max(1e-12);
            println!(
                "{name:<48} {time:>12}/iter {:>14.3} MiB/s",
                rate / (1024.0 * 1024.0)
            );
        }
        None => println!("{name:<48} {time:>12}/iter"),
    }
    if let Ok(path) = std::env::var("MPT_BENCH_JSON") {
        if !path.is_empty() {
            let elements = match throughput {
                Some(Throughput::Elements(n)) => n,
                _ => 0,
            };
            let line = format!(
                "{{\"id\":\"{name}\",\"mean_ns\":{:.3},\"elements\":{elements},\"elem_per_s\":{:.3}}}\n",
                mean_secs * 1e9,
                if elements > 0 { elements as f64 / mean_secs.max(1e-12) } else { 0.0 },
            );
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = fh.write_all(line.as_bytes());
            }
        }
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions plus its harness config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Config {
        Config {
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
        }
    }

    #[test]
    fn bencher_measures_positive_time() {
        let config = fast_config();
        let mut b = Bencher {
            config: &config,
            mean_secs: 0.0,
        };
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.mean_secs > 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            config: fast_config(),
            filter: None,
        };
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(100));
            group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
                ran += 1;
                b.iter(|| black_box((0..n).sum::<u64>()));
            });
            group.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            config: fast_config(),
            filter: Some("nomatch".to_string()),
        };
        let mut ran = 0u32;
        c.bench_function("something_else", |b| {
            ran += 1;
            b.iter(|| black_box(1u64 + 1));
        });
        assert_eq!(ran, 0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
