//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build container cannot reach a crates.io mirror, so the
//! workspace vendors a compatible miniature: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`strategy::Just`], `prop_oneof!`, `proptest::collection::vec`, and
//! the `proptest!`/`prop_assert*` macros.
//!
//! Failing cases **shrink**: every strategy builds a
//! [`strategy::ValueTree`] and the runner walks it with
//! `simplify`/`complicate` (binary search toward the range start,
//! length-then-element reduction for vectors, component-at-a-time for
//! tuples) until the minimal failing input is found or
//! [`test_runner::ProptestConfig::max_shrink_iters`] is exhausted.
//! Deliberate simplifications remain: `prop_flat_map` and `any::<T>()`
//! values shrink as opaque leaves, and numeric ranges shrink toward
//! their start rather than toward zero. The random stream is a
//! deterministic function of the test's module path and name plus the
//! `PROPTEST_SEED` environment variable — so failures reproduce
//! exactly on re-run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, error type and the deterministic RNG.

    /// Default ceiling on shrink iterations per failing case.
    pub const DEFAULT_MAX_SHRINK_ITERS: u32 = 1024;

    /// Per-test configuration. `cases` and `max_shrink_iters` are
    /// honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Ceiling on `simplify`/`complicate` steps when shrinking a
        /// failing case.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                max_shrink_iters: DEFAULT_MAX_SHRINK_ITERS,
            }
        }
    }

    impl Default for ProptestConfig {
        /// Defaults to 64 cases, overridable via `PROPTEST_CASES`.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: DEFAULT_MAX_SHRINK_ITERS,
            }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`fail`](Self::fail) kept for API compatibility.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's fully qualified name and the
        /// optional `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let env_seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            TestRng {
                state: h ^ env_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and their shrink trees.

    use crate::test_runner::TestRng;

    /// One sampled value plus the machinery to walk it toward a
    /// minimal failing input.
    ///
    /// The runner calls [`simplify`](ValueTree::simplify) while the
    /// case keeps failing and [`complicate`](ValueTree::complicate)
    /// when a simplification made it pass; both return `false` once no
    /// further moves exist. After `complicate` returns `true`,
    /// [`current`](ValueTree::current) is again the last known failing
    /// value.
    pub trait ValueTree {
        /// The type of the carried value.
        type Value;

        /// The value at the current shrink position.
        fn current(&self) -> Self::Value;

        /// Moves to a simpler value. Returns `false` when already
        /// minimal.
        fn simplify(&mut self) -> bool;

        /// Backtracks toward the last failing value after a
        /// simplification passed. Returns `false` when the search is
        /// exhausted.
        fn complicate(&mut self) -> bool;
    }

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value wrapped in its shrink tree.
        fn new_tree<'a>(
            &'a self,
            rng: &mut TestRng,
        ) -> Box<dyn ValueTree<Value = Self::Value> + 'a>;

        /// Draws one value (no shrinking).
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.new_tree(rng).current()
        }

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Builds a second-stage strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A tree with no moves: the value is already minimal (or opaque
    /// to shrinking, as for `prop_flat_map` and `any::<T>()`).
    #[derive(Debug, Clone)]
    pub struct LeafTree<T: Clone> {
        value: T,
    }

    impl<T: Clone> LeafTree<T> {
        /// Wraps `value` as an unshrinkable tree.
        pub fn new(value: T) -> Self {
            LeafTree { value }
        }
    }

    impl<T: Clone> ValueTree for LeafTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.value.clone()
        }
        fn simplify(&mut self) -> bool {
            false
        }
        fn complicate(&mut self) -> bool {
            false
        }
    }

    /// Binary-search shrink state for numeric ranges: `curr` walks
    /// toward `lo`; `complicate` turns the last passing midpoint into
    /// the new lower bound so the search converges on the minimal
    /// failing value.
    #[derive(Debug, Clone)]
    pub struct NumericTree<T> {
        lo: T,
        curr: T,
        prev: T,
        lo_is_pass: bool,
    }

    impl<T: Copy> NumericTree<T> {
        fn new(lo: T, sampled: T) -> Self {
            NumericTree {
                lo,
                curr: sampled,
                prev: sampled,
                lo_is_pass: false,
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_tree<'a>(&'a self, _rng: &mut TestRng) -> Box<dyn ValueTree<Value = T> + 'a> {
            Box::new(LeafTree::new(self.0.clone()))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    /// Shrink tree of [`Map`]: delegates every move to the inner tree
    /// and re-applies the mapping on read.
    pub struct MapTree<'a, V, F> {
        inner: Box<dyn ValueTree<Value = V> + 'a>,
        f: &'a F,
    }

    impl<'a, V, T, F> ValueTree for MapTree<'a, V, F>
    where
        F: Fn(V) -> T,
    {
        type Value = T;
        fn current(&self) -> T {
            (self.f)(self.inner.current())
        }
        fn simplify(&mut self) -> bool {
            self.inner.simplify()
        }
        fn complicate(&mut self) -> bool {
            self.inner.complicate()
        }
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T> + 'a> {
            Box::new(MapTree {
                inner: self.inner.new_tree(rng),
                f: &self.f,
            })
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        S2::Value: Clone + 'static,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S2::Value> + 'a> {
            // The second-stage strategy is derived from the sampled
            // first-stage value and owned by this call, so its tree
            // cannot outlive the call: flat-mapped values shrink as
            // opaque leaves.
            let value = (self.f)(self.inner.sample(rng)).sample(rng);
            Box::new(LeafTree::new(value))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!`
    /// backing type).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T> + 'a> {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            // Shrinking stays within the chosen option.
            self.options[i].new_tree(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl ValueTree for NumericTree<$t> {
                type Value = $t;
                fn current(&self) -> $t {
                    self.curr
                }
                fn simplify(&mut self) -> bool {
                    if self.curr == self.lo {
                        return false;
                    }
                    let next =
                        (self.lo as i128 + (self.curr as i128 - self.lo as i128) / 2) as $t;
                    if next == self.lo && self.lo_is_pass {
                        // The bound is known to pass and `curr` is its
                        // immediate successor: `curr` is minimal.
                        return false;
                    }
                    self.prev = self.curr;
                    self.curr = next;
                    true
                }
                fn complicate(&mut self) -> bool {
                    if self.curr == self.prev {
                        return false;
                    }
                    self.lo = self.curr;
                    self.lo_is_pass = true;
                    self.curr = self.prev;
                    true
                }
            }
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_tree<'a>(
                    &'a self,
                    rng: &mut TestRng,
                ) -> Box<dyn ValueTree<Value = $t> + 'a> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = self
                        .start
                        .wrapping_add((rng.next_u64() as u128 % span) as $t);
                    Box::new(NumericTree::new(self.start, v))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_tree<'a>(
                    &'a self,
                    rng: &mut TestRng,
                ) -> Box<dyn ValueTree<Value = $t> + 'a> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let v = lo.wrapping_add((rng.next_u64() as u128 % span) as $t);
                    Box::new(NumericTree::new(lo, v))
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl ValueTree for NumericTree<$t> {
                type Value = $t;
                fn current(&self) -> $t {
                    self.curr
                }
                fn simplify(&mut self) -> bool {
                    if self.curr <= self.lo {
                        return false;
                    }
                    let next = self.lo + (self.curr - self.lo) / 2.0;
                    if next >= self.curr {
                        // Midpoint rounded back up: no progress left.
                        return false;
                    }
                    if next <= self.lo && self.lo_is_pass {
                        return false;
                    }
                    self.prev = self.curr;
                    self.curr = next;
                    true
                }
                fn complicate(&mut self) -> bool {
                    if self.curr == self.prev {
                        return false;
                    }
                    self.lo = self.curr;
                    self.lo_is_pass = true;
                    self.curr = self.prev;
                    true
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = f64> + 'a> {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            let v = if v < self.end { v } else { self.start };
            Box::new(NumericTree::new(self.start, v))
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = f32> + 'a> {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            let v = if v < self.end { v } else { self.start };
            Box::new(NumericTree::new(self.start, v))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($tree:ident: $(($idx:tt, $name:ident)),+) => {
            /// Shrink tree for a tuple strategy: components simplify
            /// one at a time, in order, and `complicate` is routed to
            /// the component that moved last. Generic over the
            /// component *value* types.
            #[allow(non_snake_case)]
            pub struct $tree<'a, $($name),+> {
                $($name: Box<dyn ValueTree<Value = $name> + 'a>,)+
                last: usize,
            }

            impl<'a, $($name),+> ValueTree for $tree<'a, $($name),+> {
                type Value = ($($name,)+);
                fn current(&self) -> Self::Value {
                    ($(self.$name.current(),)+)
                }
                fn simplify(&mut self) -> bool {
                    $(
                        if self.$name.simplify() {
                            self.last = $idx;
                            return true;
                        }
                    )+
                    false
                }
                fn complicate(&mut self) -> bool {
                    match self.last {
                        $($idx => self.$name.complicate(),)+
                        _ => false,
                    }
                }
            }

            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_tree<'a>(
                    &'a self,
                    rng: &mut TestRng,
                ) -> Box<dyn ValueTree<Value = Self::Value> + 'a> {
                    let ($($name,)+) = self;
                    Box::new($tree {
                        $($name: $name.new_tree(rng),)+
                        last: usize::MAX,
                    })
                }
            }
        };
    }

    impl_tuple_strategy!(TupleTree1: (0, A));
    impl_tuple_strategy!(TupleTree2: (0, A), (1, B));
    impl_tuple_strategy!(TupleTree3: (0, A), (1, B), (2, C));
    impl_tuple_strategy!(TupleTree4: (0, A), (1, B), (2, C), (3, D));
    impl_tuple_strategy!(TupleTree5: (0, A), (1, B), (2, C), (3, D), (4, E));
    impl_tuple_strategy!(TupleTree6: (0, A), (1, B), (2, C), (3, D), (4, E), (5, F));
    impl_tuple_strategy!(TupleTree7: (0, A), (1, B), (2, C), (3, D), (4, E), (5, F), (6, G));
    impl_tuple_strategy!(
        TupleTree8: (0, A), (1, B), (2, C), (3, D), (4, E), (5, F), (6, G), (7, H)
    );
}

pub mod arbitrary {
    //! `any::<T>()` — uniform sampling over a type's full value space.

    use crate::strategy::{LeafTree, Strategy, ValueTree};
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-space strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's value space.
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary + Clone> Strategy for Any<T> {
        type Value = T;
        fn new_tree<'a>(&'a self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T> + 'a> {
            // Full-space draws (bit patterns for floats) have no
            // meaningful order to shrink along; they stay as leaves.
            Box::new(LeafTree::new(T::sample_any(rng)))
        }
    }

    /// A strategy drawing uniformly from all values of `T`.
    pub fn any<T: Arbitrary + Clone>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn sample_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        /// Uniform over *bit patterns* (includes NaNs, infinities and
        /// subnormals), matching real proptest's edge-case bias better
        /// than a uniform value range for kernel testing.
        fn sample_any(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        /// Uniform over *bit patterns*; see the `f32` impl.
        fn sample_any(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, ValueTree};
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`]: a fixed size or a
    /// half-open/inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// What the last successful simplification changed, so
    /// `complicate` can undo exactly that move.
    enum VecOp {
        None,
        Len(usize),
        Elem(usize),
    }

    /// Shrink tree for [`VecStrategy`]: first halves the length toward
    /// the minimum (dropping trailing elements), then shrinks the
    /// surviving elements one at a time.
    pub struct VecTree<'a, T> {
        elements: Vec<Box<dyn ValueTree<Value = T> + 'a>>,
        len: usize,
        min_len: usize,
        try_len: bool,
        last: VecOp,
    }

    impl<'a, T> ValueTree for VecTree<'a, T> {
        type Value = Vec<T>;
        fn current(&self) -> Vec<T> {
            self.elements[..self.len]
                .iter()
                .map(|e| e.current())
                .collect()
        }
        fn simplify(&mut self) -> bool {
            if self.try_len && self.len > self.min_len {
                let prev = self.len;
                self.len = self.min_len + (self.len - self.min_len) / 2;
                self.last = VecOp::Len(prev);
                return true;
            }
            for i in 0..self.len {
                if self.elements[i].simplify() {
                    self.last = VecOp::Elem(i);
                    return true;
                }
            }
            false
        }
        fn complicate(&mut self) -> bool {
            match core::mem::replace(&mut self.last, VecOp::None) {
                VecOp::Len(prev) => {
                    // The shorter prefix passed: keep the failing
                    // length and stop probing lengths.
                    self.len = prev;
                    self.try_len = false;
                    true
                }
                VecOp::Elem(i) => {
                    let moved = self.elements[i].complicate();
                    if moved {
                        self.last = VecOp::Elem(i);
                    }
                    moved
                }
                VecOp::None => false,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_tree<'a>(
            &'a self,
            rng: &mut TestRng,
        ) -> Box<dyn ValueTree<Value = Vec<S::Value>> + 'a> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            let elements = (0..len).map(|_| self.element.new_tree(rng)).collect();
            Box::new(VecTree {
                elements,
                len,
                min_len: self.size.lo,
                try_len: true,
                last: VecOp::None,
            })
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property-test case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over sampled inputs and
/// shrinking any failure to a minimal reproducer.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $($(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let strategy = ($(($strategy),)+);
                // Pins the closure's argument to the strategy's value
                // type; plain closure-parameter inference cannot see
                // through the shrink loop's call sites.
                fn __typed_runner<S, F>(_: &S, f: F) -> F
                where
                    S: $crate::strategy::Strategy,
                    F: Fn(S::Value) -> $crate::test_runner::TestCaseResult,
                {
                    f
                }
                let run = __typed_runner(&strategy, |__vals| {
                    let ($($arg,)+) = __vals;
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
                for case in 0..config.cases {
                    let mut tree =
                        $crate::strategy::Strategy::new_tree(&strategy, &mut rng);
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = run($crate::strategy::ValueTree::current(&*tree));
                    if let ::core::result::Result::Err(err) = outcome {
                        let mut last_err = err;
                        let mut shrinks: u32 = 0;
                        while shrinks < config.max_shrink_iters {
                            if !$crate::strategy::ValueTree::simplify(&mut *tree) {
                                break;
                            }
                            shrinks += 1;
                            match run($crate::strategy::ValueTree::current(&*tree)) {
                                ::core::result::Result::Err(e) => last_err = e,
                                ::core::result::Result::Ok(()) => {
                                    if !$crate::strategy::ValueTree::complicate(&mut *tree)
                                    {
                                        break;
                                    }
                                }
                            }
                        }
                        panic!(
                            "proptest {} failed at case {}/{} ({} shrink steps): {}\n\
                             minimal failing input: {:?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            shrinks,
                            last_err,
                            $crate::strategy::ValueTree::current(&*tree),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let y = (2u32..=8).sample(&mut rng);
            assert!((2..=8).contains(&y));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        let mut rng = TestRng::for_test("map");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((11..=33).contains(&v));
        }
    }

    #[test]
    fn flat_map_chains_stages() {
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        let mut rng = TestRng::for_test("flat_map");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_selects_all_options() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    /// Drives a tree exactly the way the runner does.
    fn shrink<V, F: Fn(&V) -> bool>(
        tree: &mut dyn crate::strategy::ValueTree<Value = V>,
        fails: F,
    ) -> u32 {
        let mut steps = 0;
        while steps < 1024 {
            if !tree.simplify() {
                break;
            }
            steps += 1;
            if !fails(&tree.current()) && !tree.complicate() {
                break;
            }
        }
        steps
    }

    #[test]
    fn shrinks_int_range_to_minimal_failing() {
        let s = 0u32..1000;
        let mut rng = TestRng::for_test("shrink_min");
        // Find a failing initial sample, then shrink it.
        let mut tree = loop {
            let t = s.new_tree(&mut rng);
            if t.current() >= 17 {
                break t;
            }
        };
        shrink(&mut *tree, |&v| v >= 17);
        assert_eq!(tree.current(), 17, "binary search must find the boundary");
    }

    #[test]
    fn shrinks_to_range_start_when_everything_fails() {
        let s = 5u64..500;
        let mut rng = TestRng::for_test("shrink_all_fail");
        let mut tree = s.new_tree(&mut rng);
        shrink(&mut *tree, |_| true);
        assert_eq!(tree.current(), 5);
    }

    #[test]
    fn shrinks_floats_toward_the_boundary() {
        let s = -2.0f64..2.0;
        let mut rng = TestRng::for_test("shrink_float");
        let mut tree = loop {
            let t = s.new_tree(&mut rng);
            if t.current() > 0.5 {
                break t;
            }
        };
        shrink(&mut *tree, |&v| v > 0.5);
        let v = tree.current();
        assert!(
            v > 0.5 && v < 0.51,
            "expected a value just above 0.5, got {v}"
        );
    }

    #[test]
    fn shrinks_tuple_components_independently() {
        let s = (0u32..100, 0u32..100);
        let mut rng = TestRng::for_test("shrink_tuple");
        let mut tree = loop {
            let t = s.new_tree(&mut rng);
            if t.current().0 >= 10 {
                break t;
            }
        };
        shrink(&mut *tree, |&(a, _)| a >= 10);
        assert_eq!(
            tree.current(),
            (10, 0),
            "a hits its boundary, b its minimum"
        );
    }

    #[test]
    fn shrinks_vec_length_and_elements() {
        let s = crate::collection::vec(0u32..100, 0usize..20);
        let mut rng = TestRng::for_test("shrink_vec");
        let mut tree = loop {
            let t = s.new_tree(&mut rng);
            if t.current().iter().any(|&x| x >= 50) {
                break t;
            }
        };
        let initial_len = tree.current().len();
        shrink(&mut *tree, |v| v.iter().any(|&x| x >= 50));
        let v = tree.current();
        assert!(v.iter().any(|&x| x >= 50), "shrunk value must still fail");
        assert!(v.len() <= initial_len);
        // Every surviving element is minimal: 0 for passers, 50 for
        // the element keeping the case failing.
        assert!(v.iter().all(|&x| x == 0 || x == 50), "{v:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, early Ok return.
        #[test]
        fn macro_smoke((a, b) in (0u32..50, 0u32..50), c in 0u32..50) {
            if a == 49 {
                return Ok(());
            }
            prop_assert!(a < 50 && b < 50 && c < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 50);
        }
    }

    proptest! {
        /// End-to-end shrinking through the runner: any failing case
        /// must be walked down to the minimal reproducer before the
        /// panic is reported.
        #[test]
        #[should_panic(expected = "minimal failing input: (17,)")]
        fn macro_shrinks_to_minimal(v in 0u32..1000) {
            prop_assert!(v < 17);
        }
    }
}
