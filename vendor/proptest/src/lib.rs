//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build container cannot reach a crates.io mirror, so the
//! workspace vendors a compatible miniature: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`strategy::Just`], `prop_oneof!`, `proptest::collection::vec`, and
//! the `proptest!`/`prop_assert*` macros.
//!
//! Differences from real proptest are deliberate simplifications:
//! cases are sampled (not shrunk on failure), and the random stream is
//! a deterministic function of the test's module path and name plus
//! the `PROPTEST_SEED` environment variable — so failures reproduce
//! exactly on re-run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, error type and the deterministic RNG.

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// Defaults to 64 cases, overridable via `PROPTEST_CASES`.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias of [`fail`](Self::fail) kept for API compatibility.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's fully qualified name and the
        /// optional `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let env_seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            TestRng {
                state: h ^ env_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike real proptest there is no shrinking: `sample` draws one
    /// value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Builds a second-stage strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!`
    /// backing type).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — uniform sampling over a type's full value space.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-space strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's value space.
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }

    /// A strategy drawing uniformly from all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn sample_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        /// Uniform over *bit patterns* (includes NaNs, infinities and
        /// subnormals), matching real proptest's edge-case bias better
        /// than a uniform value range for kernel testing.
        fn sample_any(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        /// Uniform over *bit patterns*; see the `f32` impl.
        fn sample_any(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: a fixed size or a
    /// half-open/inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property-test case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $($(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let y = (2u32..=8).sample(&mut rng);
            assert!((2..=8).contains(&y));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        let mut rng = TestRng::for_test("map");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((11..=33).contains(&v));
        }
    }

    #[test]
    fn flat_map_chains_stages() {
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        let mut rng = TestRng::for_test("flat_map");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_selects_all_options() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, early Ok return.
        #[test]
        fn macro_smoke((a, b) in (0u32..50, 0u32..50), c in 0u32..50) {
            if a == 49 {
                return Ok(());
            }
            prop_assert!(a < 50 && b < 50 && c < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 50);
        }
    }
}
