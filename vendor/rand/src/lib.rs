//! Offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build container cannot reach a crates.io mirror, so the
//! workspace vendors a minimal implementation with the same surface:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`),
//! [`distributions::Uniform`]/[`distributions::Standard`] sampling and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is a SplitMix64 stream — statistically solid for the
//! initialization/augmentation purposes the workspace puts it to, and
//! deterministic per seed (which the data pipeline tests rely on).

#![forbid(unsafe_code)]

/// Low-level uniform word source, the base trait for every generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling typed values; blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (uniform in `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample; implemented for the
/// integer and float `Range`/`RangeInclusive` types the workspace
/// draws from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f32(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so small consecutive seeds give unrelated streams.
            StdRng {
                state: splitmix(seed ^ 0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix(self.state)
        }
    }

    #[inline]
    fn splitmix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Distributions sampled through
/// [`Distribution::sample`](distributions::Distribution::sample).
pub mod distributions {
    use super::{unit_f32, unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng` as the randomness source.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform `[0, 1)` for floats, full
    /// range for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let v = self.low + (self.high - self.low) * unit_f64(rng.next_u64());
            if v < self.high {
                v
            } else {
                self.low
            }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let v = self.low + (self.high - self.low) * unit_f32(rng.next_u64());
            if v < self.high {
                v
            } else {
                self.low
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let mut r = StdRng::seed_from_u64(8);
        let c: Vec<u64> = (0..8).map(|_| r.gen::<u64>()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(1.0f32..4.0);
            assert!((1.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_distribution_covers_interval() {
        let mut r = StdRng::seed_from_u64(4);
        let d = Uniform::new(-2.0f64, 2.0);
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut r)).sum::<f64>() / 50_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
