//! Why stochastic rounding wins: the accumulation-stagnation
//! experiment behind the paper's Table II.
//!
//! A low-precision accumulator (FP12 = E6M5) sums many small FP8
//! products. Under round-to-nearest, once the accumulator grows past
//! the point where each addend falls below half a ULP, every further
//! addition is swallowed — the sum *stagnates*. Stochastic rounding
//! keeps the expectation right. This is exactly the mechanism that
//! makes `E6M5-SR` converge in Table II where `E6M5-RN/RZ/RO`
//! collapse.
//!
//! ```text
//! cargo run -p mpt-core --example rounding_stagnation
//! ```

use mpt_arith::{mac_step, MacConfig};
use mpt_formats::Rounding;

fn main() {
    // Sum 4096 products of 0.25 * 0.5 = 0.125 each; exact sum = 512.
    let steps = 4096usize;
    let (a, b) = (0.25f32, 0.5f32);
    let exact = steps as f64 * (a as f64 * b as f64);
    println!("accumulating {steps} x {a}*{b}  (exact sum = {exact})\n");
    println!("{:<28}{:>12}{:>14}", "accumulator", "result", "error (%)");
    println!("{}", "-".repeat(54));

    for (label, mac) in [
        (
            "E6M5-RZ  (FP12 truncate)",
            MacConfig::fp8_fp12(Rounding::TowardZero),
        ),
        (
            "E6M5-RO  (FP12 to-odd)",
            MacConfig::fp8_fp12(Rounding::ToOdd),
        ),
        (
            "E6M5-RN  (FP12 nearest)",
            MacConfig::fp8_fp12(Rounding::Nearest),
        ),
        (
            "E6M5-SR  (FP12 stochastic)",
            MacConfig::fp8_fp12(Rounding::stochastic()).with_seed(7),
        ),
        ("E5M10-RN (FP16 nearest)", MacConfig::fp8_fp16_rn()),
        ("E8M23-RN (FP32 baseline)", MacConfig::fp32()),
    ] {
        let mut acc = 0.0f32;
        for k in 0..steps {
            acc = mac_step(acc, a, b, &mac, 0, 0, k);
        }
        let err = 100.0 * (acc as f64 - exact).abs() / exact;
        println!("{label:<28}{acc:>12.2}{err:>13.2}%");
    }

    println!(
        "\nRN/RZ/RO stall once the accumulator's ULP exceeds twice the addend\n\
         (E6M5 ULP at 128 is 4.0 > 2 x 0.125); SR keeps accumulating in\n\
         expectation. The paper's Table II shows the training-accuracy\n\
         consequence; reproduce it with:\n\
         \n    cargo run --release -p mpt-bench --bin table2_cnn_accuracy"
    );
}
