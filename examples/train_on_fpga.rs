//! Training *through the FPGA accelerator*: every GEMM of every
//! forward and backward pass executes on the simulated hardware (the
//! paper's `device='fpga'` layer parameter), with per-launch latency
//! accounting — and results bit-identical to CPU emulation.
//!
//! ```text
//! cargo run --release -p mpt-core --example train_on_fpga
//! ```

use mpt_data::synthetic_mnist;
use mpt_fpga::{Accelerator, FpgaBackend, SaConfig, SynthesisDb};
use mpt_models::lenet5;
use mpt_nn::{GemmPrecision, Graph, Layer, Optimizer, Sgd};
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SynthesisDb::u55();
    let cfg = SaConfig::new(8, 8, 4)?;
    let freq = db.frequency(8, 8, 4).expect("synthesized");
    let backend = Rc::new(FpgaBackend::new(Accelerator::new(cfg, freq)));
    println!("training LeNet5 (FP8 x FP12-SR) on backend: {cfg} @ {freq} MHz\n");

    let data = synthetic_mnist(64, 1);
    let model = lenet5(GemmPrecision::fp8_fp12_sr().with_seed(4), 9);
    let params = model.parameters();
    let mut opt = Sgd::new(0.02, 0.9, 0.0);

    for step in 0..4 {
        for p in &params {
            p.zero_grad();
        }
        let mut g = Graph::with_backend(true, backend.clone());
        let idx: Vec<usize> = (0..16).map(|i| (i + step * 16) % data.len()).collect();
        let (images, labels) = data.gather(&idx);
        let x = g.input(images);
        let logits = model.forward(&mut g, x);
        let loss = g.cross_entropy(logits, &labels);
        let loss_val = g.value(loss).item();
        g.backward(loss, 256.0);
        for p in &params {
            let mut grad = p.grad_mut();
            for v in grad.data_mut() {
                *v /= 256.0;
            }
        }
        opt.step(&params);
        println!(
            "step {step}: loss {loss_val:.4}  |  {} GEMM launches, {:.3} ms on hardware",
            backend.gemm_count(),
            backend.elapsed_s() * 1e3
        );
    }
    println!(
        "\ntotal simulated hardware time: {:.3} ms across {} launches",
        backend.elapsed_s() * 1e3,
        backend.gemm_count()
    );
    Ok(())
}
