//! Quickstart: custom number formats, a quantized GEMM, and the
//! emulation-vs-FPGA bit-equality that MPTorch-FPGA is built around.
//!
//! ```text
//! cargo run -p mpt-core --example quickstart
//! ```

use mpt_arith::{qgemm, QGemmConfig};
use mpt_core::Device;
use mpt_formats::{FloatFormat, Quantizer, Rounding};
use mpt_fpga::SynthesisDb;
use mpt_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Quantize a value into the paper's formats.
    let x = 1.2345f32;
    for (name, q) in [
        (
            "E5M2-RN (FP8)",
            Quantizer::float(FloatFormat::e5m2(), Rounding::Nearest),
        ),
        (
            "E6M5-RN (FP12)",
            Quantizer::float(FloatFormat::e6m5(), Rounding::Nearest),
        ),
        (
            "E6M5-SR (FP12)",
            Quantizer::float(FloatFormat::e6m5(), Rounding::stochastic()),
        ),
        (
            "E5M10-RN (FP16)",
            Quantizer::float(FloatFormat::e5m10(), Rounding::Nearest),
        ),
    ] {
        println!("{x} -> {name}: {}", q.quantize_f32(x, 0));
    }

    // 2. A custom-precision GEMM: FP8 operands, fused multiplier,
    //    FP12 stochastic-rounding accumulator (the paper's headline
    //    configuration).
    let cfg = QGemmConfig::fp8_fp12_sr().with_seed(42);
    let a = Tensor::from_fn(vec![4, 8], |i| ((i % 5) as f32 - 2.0) * 0.3);
    let b = Tensor::from_fn(vec![8, 3], |i| ((i % 7) as f32 - 3.0) * 0.2);
    let emulated = qgemm(&a, &b, &cfg)?;
    println!("\nemulated GEMM [0,0..3] = {:?}", &emulated.data()[..3]);

    // 3. The same GEMM on the simulated FPGA accelerator: bit-equal,
    //    plus a latency measurement.
    let db = SynthesisDb::u55();
    let fpga = Device::fpga(8, 8, 4, &db)?;
    let (on_fpga, latency) = fpga.execute_gemm(&a, &b, &cfg)?;
    assert_eq!(emulated, on_fpga, "emulation and FPGA must agree bitwise");
    let lat = latency.expect("FPGA reports latency");
    println!(
        "FPGA <8,8,4>: identical bits, {} cycles, {:.2} us total",
        lat.core_cycles,
        lat.total_s * 1e6
    );

    // 4. One step of mixed-precision training.
    use mpt_nn::{GemmPrecision, Graph, Layer, Linear, Optimizer, Sgd};
    let layer = Linear::new(8, 2, GemmPrecision::fp8_fp12_sr(), 0);
    let mut opt = Sgd::new(0.01, 0.9, 0.0);
    let mut g = Graph::new(true);
    let input = g.input(Tensor::from_fn(vec![4, 8], |i| (i as f32 * 0.37).sin()));
    let logits = layer.forward(&mut g, input);
    let loss = g.cross_entropy(logits, &[0, 1, 0, 1]);
    println!("\ninitial loss = {:.4}", g.value(loss).item());
    g.backward(loss, 256.0); // the paper's loss scale
    for p in layer.parameters() {
        let mut grad = p.grad_mut();
        for v in grad.data_mut() {
            *v /= 256.0; // unscale
        }
    }
    opt.step(&layer.parameters());
    println!("stepped {} parameters", layer.parameters().len());
    Ok(())
}
