//! End-to-end mixed-precision training: LeNet5 on the synthetic
//! MNIST stand-in with the paper's FP8×FP12-SR arithmetic and
//! adaptive loss scaling (initial factor 256).
//!
//! ```text
//! cargo run --release -p mpt-core --example train_lenet_fp8
//! ```
//!
//! Flags:
//!
//! * `--checkpoint-every <N>` — atomically save a resumable
//!   checkpoint every N batches (per-config file, default base path
//!   `lenet_fp8.ckpt`);
//! * `--checkpoint <path>` — override the checkpoint base path;
//! * `--resume` — resume each config's run from its checkpoint
//!   (bit-identical to never having stopped);
//! * `--backend cpu|fpga|fpga-pipelined` — where quantized GEMMs
//!   execute (bit-identical everywhere; only timing accounting and
//!   telemetry differ).
//!
//! Set `MPT_TELEMETRY=1` (or point `MPT_TELEMETRY_JSONL` at a file)
//! to watch the run: per-quantizer saturation/rounding counters,
//! per-layer forward/backward time, per-GEMM spans, loss-scale
//! events, and a perf-model calibration record for the accelerator
//! the offline matcher would pick for this workload. Point
//! `MPT_TELEMETRY_TRACE` at a path to additionally capture a
//! Chrome-trace timeline (with per-stage FPGA pipeline tracks under
//! `--backend fpga-pipelined`).

use mpt_arith::{CpuBackend, GemmBackend, GemmShape};
use mpt_core::select_accelerator;
use mpt_core::trainer::{evaluate_cnn, train_cnn_resumable, TrainConfig, TrainOptions};
use mpt_data::synthetic_mnist;
use mpt_fpga::{Accelerator, FpgaBackend, SaConfig, SynthesisDb};
use mpt_models::lenet5;
use mpt_nn::{GemmPrecision, Sgd};
use std::rc::Rc;

struct Args {
    checkpoint_every: Option<usize>,
    checkpoint_path: String,
    resume: bool,
    backend: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        checkpoint_every: None,
        checkpoint_path: "lenet_fp8.ckpt".to_string(),
        resume: false,
        backend: "cpu".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checkpoint-every" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--checkpoint-every takes a batch count");
                args.checkpoint_every = Some(n);
            }
            "--checkpoint" => {
                args.checkpoint_path = it.next().expect("--checkpoint takes a path");
            }
            "--resume" => args.resume = true,
            "--backend" => {
                args.backend = it.next().expect("--backend takes cpu|fpga|fpga-pipelined");
            }
            other => {
                eprintln!(
                    "unknown flag {other}\n\
                     usage: train_lenet_fp8 [--checkpoint-every <N>] \
                     [--checkpoint <path>] [--resume] \
                     [--backend cpu|fpga|fpga-pipelined]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Builds the GEMM backend named on the command line. The FPGA
/// variants simulate the `<8,8,4>` systolic array at 298 MHz — the
/// config the pipeline benchmark gates on.
fn make_backend(name: &str) -> Rc<dyn GemmBackend> {
    let fpga = || {
        let cfg = SaConfig::new(8, 8, 4).expect("<8,8,4> is synthesizable");
        FpgaBackend::new(Accelerator::new(cfg, 298.0))
    };
    match name {
        "cpu" => Rc::new(CpuBackend::new()),
        "fpga" => Rc::new(fpga()),
        "fpga-pipelined" => Rc::new(fpga().pipelined()),
        other => {
            eprintln!("unknown backend {other}: use cpu, fpga, or fpga-pipelined");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let telemetry = mpt_telemetry::init_from_env();
    let train = synthetic_mnist(512, 1);
    let test = synthetic_mnist(256, 2);

    for (label, tag, prec) in [
        ("FP32 baseline (E8M23-RN)", "fp32", GemmPrecision::fp32()),
        (
            "FP8 x FP12-SR (paper config)",
            "fp8",
            GemmPrecision::fp8_fp12_sr().with_seed(3),
        ),
    ] {
        let model = lenet5(prec, 5);
        println!("== {label} ==");
        println!(
            "  untrained accuracy: {:.2}%",
            evaluate_cnn(&model, &test, 32)
        );
        // One checkpoint file per precision config.
        let mut opts = TrainOptions::default();
        if args.checkpoint_every.is_some() || args.resume {
            opts.checkpoint_path = Some(format!("{}.{tag}", args.checkpoint_path).into());
            opts.checkpoint_every = args.checkpoint_every;
            opts.resume = args.resume;
        }
        let mut opt = Sgd::new(0.02, 0.9, 0.0);
        let report = match train_cnn_resumable(
            &model,
            &mut opt,
            &train,
            &test,
            TrainConfig {
                epochs: 3,
                batch_size: 32,
                loss_scale: 256.0,
                seed: 0,
            },
            make_backend(&args.backend),
            &opts,
        ) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("checkpoint error: {e}");
                std::process::exit(1);
            }
        };
        for (e, loss) in report.epoch_losses.iter().enumerate() {
            println!("  epoch {e}: mean loss {loss:.4}");
        }
        println!(
            "  final accuracy: {:.2}%  (loss-scale overflows: {})\n",
            report.test_accuracy, report.overflows
        );
    }
    println!(
        "Both runs converge on the easy tier — the paper's Table II LeNet5 column,\n\
         where even aggressive formats reach near-baseline accuracy."
    );

    if telemetry {
        // Audit the performance model against the cycle-level timing
        // for the accelerator the matcher picks for LeNet5's two FC
        // GEMMs (batch 32) — the Fig. 7 predicted-vs-measured check.
        let workload = [GemmShape::new(32, 256, 120), GemmShape::new(32, 120, 84)];
        let chosen = select_accelerator(&workload, &SynthesisDb::u55(), 8);
        println!(
            "\nmatched accelerator {}@{:.1}MHz: estimated {:.3}ms, measured {:.3}ms",
            chosen.config,
            chosen.freq_mhz,
            chosen.estimated_s * 1e3,
            chosen.measured_s * 1e3
        );

        println!("\n{}", mpt_telemetry::Snapshot::capture().render_table());
        mpt_telemetry::sink::flush();
        if let Some(path) = mpt_telemetry::sink::jsonl_path() {
            println!("event log: {}", path.display());
        }
        if let Some(path) = mpt_telemetry::trace::finalize() {
            println!("chrome trace: {} (open in Perfetto)", path.display());
        }
    }
}
