//! End-to-end mixed-precision training: LeNet5 on the synthetic
//! MNIST stand-in with the paper's FP8×FP12-SR arithmetic and
//! adaptive loss scaling (initial factor 256).
//!
//! ```text
//! cargo run --release -p mpt-core --example train_lenet_fp8
//! ```
//!
//! Set `MPT_TELEMETRY=1` (or point `MPT_TELEMETRY_JSONL` at a file)
//! to watch the run: per-quantizer saturation/rounding counters,
//! per-layer forward/backward time, per-GEMM spans, loss-scale
//! events, and a perf-model calibration record for the accelerator
//! the offline matcher would pick for this workload.

use mpt_arith::GemmShape;
use mpt_core::select_accelerator;
use mpt_core::trainer::{evaluate_cnn, train_cnn, TrainConfig};
use mpt_data::synthetic_mnist;
use mpt_fpga::SynthesisDb;
use mpt_models::lenet5;
use mpt_nn::{GemmPrecision, Sgd};

fn main() {
    let telemetry = mpt_telemetry::init_from_env();
    let train = synthetic_mnist(512, 1);
    let test = synthetic_mnist(256, 2);

    for (label, prec) in [
        ("FP32 baseline (E8M23-RN)", GemmPrecision::fp32()),
        (
            "FP8 x FP12-SR (paper config)",
            GemmPrecision::fp8_fp12_sr().with_seed(3),
        ),
    ] {
        let model = lenet5(prec, 5);
        println!("== {label} ==");
        println!(
            "  untrained accuracy: {:.2}%",
            evaluate_cnn(&model, &test, 32)
        );
        let mut opt = Sgd::new(0.02, 0.9, 0.0);
        let report = train_cnn(
            &model,
            &mut opt,
            &train,
            &test,
            TrainConfig {
                epochs: 3,
                batch_size: 32,
                loss_scale: 256.0,
                seed: 0,
            },
        );
        for (e, loss) in report.epoch_losses.iter().enumerate() {
            println!("  epoch {e}: mean loss {loss:.4}");
        }
        println!(
            "  final accuracy: {:.2}%  (loss-scale overflows: {})\n",
            report.test_accuracy, report.overflows
        );
    }
    println!(
        "Both runs converge on the easy tier — the paper's Table II LeNet5 column,\n\
         where even aggressive formats reach near-baseline accuracy."
    );

    if telemetry {
        // Audit the performance model against the cycle-level timing
        // for the accelerator the matcher picks for LeNet5's two FC
        // GEMMs (batch 32) — the Fig. 7 predicted-vs-measured check.
        let workload = [GemmShape::new(32, 256, 120), GemmShape::new(32, 120, 84)];
        let chosen = select_accelerator(&workload, &SynthesisDb::u55(), 8);
        println!(
            "\nmatched accelerator {}@{:.1}MHz: estimated {:.3}ms, measured {:.3}ms",
            chosen.config,
            chosen.freq_mhz,
            chosen.estimated_s * 1e3,
            chosen.measured_s * 1e3
        );

        println!("\n{}", mpt_telemetry::Snapshot::capture().render_table());
        mpt_telemetry::sink::flush();
        if let Some(path) = mpt_telemetry::sink::jsonl_path() {
            println!("event log: {}", path.display());
        }
    }
}
