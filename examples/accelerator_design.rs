//! Model-specific accelerator selection: the paper's offline matching
//! flow (Section IV-B) end to end.
//!
//! Extracts the GEMM workload of one training iteration of a model,
//! brute-forces the pre-generated ⟨N, M, C⟩ configuration space with
//! per-GEMM transpose/partition mapping, and reports the chosen
//! configuration with its estimated and cycle-simulated latencies.
//!
//! ```text
//! cargo run --release -p mpt-core --example accelerator_design [model]
//! ```
//!
//! `model` is one of `lenet5`, `vgg16`, `resnet20`, `resnet50`,
//! `nanogpt` (default `resnet20`).

use mpt_core::matching::{select_accelerator, sweep_core_counts};
use mpt_fpga::{best_mapping, SynthesisDb};
use mpt_models::ModelDesc;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "resnet20".into());
    let model = match which.as_str() {
        "lenet5" => ModelDesc::lenet5(64),
        "vgg16" => ModelDesc::vgg16(128),
        "resnet20" => ModelDesc::resnet20(128),
        "resnet50" => ModelDesc::resnet50(16),
        "nanogpt" => ModelDesc::nanogpt(64),
        other => {
            eprintln!("unknown model '{other}', using resnet20");
            ModelDesc::resnet20(128)
        }
    };
    let workload = model.training_gemms();
    println!(
        "{}: {} GEMMs per training iteration, {:.2} GMACs\n",
        model.name(),
        workload.len(),
        model.total_macs() as f64 / 1e9
    );

    let db = SynthesisDb::u55();
    let choice = select_accelerator(&workload, &db, 8);
    println!(
        "selected configuration: {} @ {:.1} MHz",
        choice.config, choice.freq_mhz
    );
    println!("  estimated iteration latency: {:.4} s", choice.estimated_s);
    println!(
        "  measured (cycle model):      {:.4} s  (+{:.1}%)",
        choice.measured_s,
        100.0 * (choice.measured_s - choice.estimated_s) / choice.estimated_s
    );

    println!(
        "\ncore-count sweep on the chosen array ({}x{}):",
        choice.config.n(),
        choice.config.m()
    );
    for (c, f, lat) in sweep_core_counts(&workload, &db, choice.config.n(), choice.config.m(), 8) {
        let marker = if c == choice.config.c() {
            "  <= selected"
        } else {
            ""
        };
        println!("  C={c:<2} {f:>6.1} MHz  {lat:.4} s{marker}");
    }

    println!("\nmapping decisions for the first GEMMs of the iteration:");
    for shape in workload.iter().take(6) {
        let m = best_mapping(*shape, choice.config, choice.freq_mhz, 8, 8);
        println!(
            "  {:<22} -> {}transposed, partition {:?}, padded ({}, {}, {}), {:.1} us",
            shape.to_string(),
            if m.transposed { "" } else { "not " },
            m.partition,
            m.padded.n_comp,
            m.padded.k_mem,
            m.padded.m_comp,
            m.latency.total_s * 1e6
        );
    }
}
